"""Experiment analysis: builders for every table and figure in the
paper's evaluation (see DESIGN.md's per-experiment index)."""

from repro.analysis.coverage import (DEFAULT_CONFIGS, CoverageMatrix,
                                     compute_coverage_matrix)
from repro.analysis.probabilities import (Figure2, ROW_ORDER,
                                          compute_figure2)
from repro.analysis.footprint import (FootprintRow, cache_growth,
                                      footprint_table, static_growth)
from repro.analysis.report import (bar_chart, format_table, geomean,
                                   percent)
from repro.analysis.slowdown import (RunCost, SlowdownSweep, config_label,
                                     dbt_baseline, figure12, figure14,
                                     figure15, sweep)

__all__ = [
    "DEFAULT_CONFIGS", "CoverageMatrix", "compute_coverage_matrix",
    "Figure2", "ROW_ORDER", "compute_figure2",
    "bar_chart", "format_table", "geomean", "percent",
    "FootprintRow", "cache_growth", "footprint_table", "static_growth",
    "RunCost", "SlowdownSweep", "config_label", "dbt_baseline",
    "figure12", "figure14", "figure15", "sweep",
]
