"""Plain-text table rendering for the experiment reports.

Every benchmark harness prints its figure/table through these helpers
so the output lines up with the paper's presentation (benchmarks as
rows, fp suite first, geometric means per suite and overall).
"""

from __future__ import annotations

import math
import warnings
from typing import Iterable, Sequence


def geomean(values: Iterable[float], strict: bool = False) -> float:
    """Geometric mean over the positive inputs; empty input -> 0.

    A geometric mean is undefined for non-positive values, so they are
    filtered out — but silently dropping a benchmark's 0.0 overhead
    ratio would skew a summary row without a trace.  Filtering
    therefore warns (:class:`UserWarning` naming the dropped values),
    or raises ``ValueError`` under ``strict=True``.
    """
    values = list(values)
    dropped = [v for v in values if v <= 0]
    if dropped:
        if strict:
            raise ValueError(
                f"geomean is undefined for non-positive values: "
                f"{dropped!r}")
        warnings.warn(
            f"geomean dropped {len(dropped)} non-positive value(s): "
            f"{dropped!r}", stacklevel=2)
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width table; floats get 3 decimals, ratios under
    'xx%' headers are printed as percentages."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:.3f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def percent(value: float, digits: int = 2) -> str:
    return f"{value * 100:.{digits}f}%"


def bar_chart(items: Sequence[tuple[str, float]], width: int = 50,
              title: str | None = None,
              unit: str = "x") -> str:
    """Horizontal ASCII bar chart — the paper's figures are bar charts,
    so the benches render their series the same way."""
    if not items:
        return ""
    peak = max(value for _, value in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = []
    if title:
        lines.append(title)
    for label, value in items:
        bar = "#" * max(1, round(value / peak * width))
        lines.append(f"{label.ljust(label_width)}  "
                     f"{bar} {value:.3f}{unit}")
    return "\n".join(lines)
