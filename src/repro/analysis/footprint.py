"""Code-footprint analysis.

Section 3.2 rejects per-instruction regions because "the performance
cost and code footprint size would be prohibitive"; this module
quantifies the footprint each technique actually costs:

* static: rewritten-text size over original-text size,
* dynamic: DBT code-cache bytes over the guest text bytes the run
  actually touched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program
from repro.checking import Policy, UpdateStyle, make_technique
from repro.cfg import build_cfg
from repro.dbt import Dbt
from repro.instrument import StaticRewriter


@dataclass
class FootprintRow:
    technique: str
    static_growth: float | None       #: rewritten / original text
    cache_growth: float               #: cache bytes / translated guest


def static_growth(program: Program, technique_name: str,
                  policy: Policy = Policy.ALLBB,
                  update_style: UpdateStyle = UpdateStyle.JCC) -> float:
    cfg = build_cfg(program)
    technique = make_technique(technique_name, update_style=update_style,
                               cfg=cfg)
    instrumented = StaticRewriter(technique, policy).rewrite(program)
    return instrumented.code_growth


def cache_growth(program: Program, technique_name: str | None,
                 policy: Policy = Policy.ALLBB,
                 update_style: UpdateStyle = UpdateStyle.JCC) -> float:
    technique = (make_technique(technique_name,
                                update_style=update_style)
                 if technique_name else None)
    dbt = Dbt(program, technique=technique, policy=policy)
    result = dbt.run()
    if not result.ok:
        raise RuntimeError(f"run failed: {result.stop}")
    translated_guest_bytes = sum(
        tb.guest_end - tb.guest_start for tb in dbt.blocks.values())
    return result.cache_bytes / max(translated_guest_bytes, 1)


def footprint_table(program: Program,
                    techniques=("ecf", "edgcf", "rcf"),
                    include_static=True) -> list[FootprintRow]:
    """Per-technique footprint on one program."""
    rows = [FootprintRow(technique="none", static_growth=1.0,
                         cache_growth=cache_growth(program, None))]
    for name in techniques:
        rows.append(FootprintRow(
            technique=name,
            static_growth=(static_growth(program, name)
                           if include_static else None),
            cache_growth=cache_growth(program, name)))
    return rows
