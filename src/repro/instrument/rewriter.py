"""Static binary rewriter: whole-program instrumentation.

This is the classic compile-time deployment model of CFCSS/ECCA (and
works for ECF/EdgCF/RCF too): take an assembled program, build its CFG,
weave the technique's CHECK_SIG/GEN_SIG code around every block, relayout
the text section, and fix every branch.

Restrictions (both documented in DESIGN.md):

* no register-indirect jumps/calls (``jmpr``/``callr``): static
  relayout would invalidate code addresses the guest computed itself.
  ``call``/``ret`` are fine — return addresses are pushed by the
  *rewritten* call, so they are consistent.  Programs with jump tables
  go through the DBT, which has no such restriction.
* whole-CFG techniques (CFCSS, ECCA) additionally reject ``ret``
  (they have no way to check dynamic targets — one of the reasons the
  paper's DBT implements only ECF/EdgCF/RCF).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import encode
from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.opcodes import Kind, Op
from repro.isa.program import Program
from repro.isa.registers import T1
from repro.cfg import BasicBlock, ControlFlowGraph, ExitKind, build_cfg
from repro.checking.base import BlockInfo, CondDesc, Technique
from repro.checking.policies import Policy
from repro.instrument.lowering import (LoweredSnippet,
                                       assign_addresses,
                                       check_slot_addresses,
                                       encode_snippet, lower_items)


class RewriteError(ValueError):
    """The program cannot be statically instrumented as requested."""


@dataclass
class InstrumentedProgram:
    """A statically instrumented program plus its bookkeeping maps."""

    program: Program                       #: the runnable rewritten image
    original: Program
    technique_name: str
    policy: Policy
    #: old block start -> new block start (entry-instrumentation start)
    block_map: dict[int, int] = field(default_factory=dict)
    #: old instruction address -> new address of its translation
    instr_map: dict[int, int] = field(default_factory=dict)
    #: new-address ranges [start, end) that are inserted instrumentation
    inserted_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: new addresses of check instructions (error branches / check-divs)
    check_addresses: set[int] = field(default_factory=set)
    error_sink: int = 0

    def is_instrumentation(self, addr: int) -> bool:
        """True when ``addr`` lies in inserted (non-original) code."""
        return any(start <= addr < end for start, end in
                   self.inserted_ranges)

    @property
    def code_growth(self) -> float:
        """Text-size ratio new/old."""
        return len(self.program.text) / max(len(self.original.text), 1)


def _cond_desc(instr: Instruction) -> CondDesc:
    if instr.meta.kind is Kind.BRANCH_COND:
        return CondDesc(cond=instr.meta.cond)
    return CondDesc(reg_op=instr.op, reg=instr.rd)


def _block_info(block: BasicBlock, cfg: ControlFlowGraph,
                entry: int) -> BlockInfo:
    return BlockInfo(
        start=block.start,
        is_entry=block.start == entry,
        predecessors=tuple(block.predecessors),
        successors=tuple(block.successors),
    )


@dataclass
class _Piece:
    """One layout element of the rewritten text."""

    kind: str                         # snippet | ins | blockbr
    snippet: LoweredSnippet | None = None
    instr: Instruction | None = None
    op: Op | None = None
    rd: int = 0
    old_target: int = 0
    old_addr: int | None = None       # original address, for instr_map
    address: int = 0

    @property
    def size_bytes(self) -> int:
        if self.kind == "snippet":
            return self.snippet.size_words * WORD_SIZE
        return WORD_SIZE


class StaticRewriter:
    """Drives the whole-program instrumentation."""

    def __init__(self, technique: Technique, policy: Policy = Policy.ALLBB):
        self.technique = technique
        self.policy = policy

    def rewrite(self, program: Program) -> InstrumentedProgram:
        cfg = build_cfg(program)
        self._validate(cfg)
        technique = self.technique
        entry_old = cfg.entry_block.start

        pieces: list[_Piece] = []
        block_start_piece: dict[int, int] = {}   # old start -> piece index
        inserted_piece_indexes: list[int] = []

        # Prologue: establish the signature invariant, jump to the entry
        # block's instrumented head.
        prologue = lower_items(technique.prologue(entry_old), compact=False)
        pieces.append(_Piece(kind="snippet", snippet=prologue))
        inserted_piece_indexes.append(0)
        pieces.append(_Piece(kind="blockbr", op=Op.JMP,
                             old_target=entry_old))
        inserted_piece_indexes.append(1)

        for block in cfg.in_order():
            info = _block_info(block, cfg, entry_old)
            check = self.policy.should_check(block)
            head = lower_items(technique.entry_items(info, check),
                               compact=False)
            block_start_piece[block.start] = len(pieces)
            if head.slots:
                inserted_piece_indexes.append(len(pieces))
            pieces.append(_Piece(kind="snippet", snippet=head))
            self._emit_block_body(pieces, inserted_piece_indexes, block,
                                  info, cfg)

        # Error sink: report and stop.
        error_piece_index = len(pieces)
        for instr in (
            Instruction(op=Op.MOVI, rd=1, imm=1),
            Instruction(op=Op.SYSCALL, imm=6),   # Service.CFC_ERROR
        ):
            inserted_piece_indexes.append(len(pieces))
            pieces.append(_Piece(kind="ins", instr=instr))

        # ---- layout ----
        cursor = program.text_base
        for piece in pieces:
            piece.address = cursor
            if piece.kind == "snippet":
                assign_addresses(piece.snippet, cursor)
            cursor += piece.size_bytes

        block_map = {start: pieces[index].address
                     for start, index in block_start_piece.items()}
        error_sink = pieces[error_piece_index].address

        def resolver(old_block_start: int) -> int:
            return block_map[old_block_start]

        # ---- encode ----
        encoded: list[tuple[int, Instruction]] = []
        check_addresses: set[int] = set()
        instr_map: dict[int, int] = {}
        for piece in pieces:
            if piece.kind == "snippet":
                encoded.extend(encode_snippet(piece.snippet, resolver,
                                              error_sink))
                check_addresses.update(check_slot_addresses(piece.snippet))
            elif piece.kind == "ins":
                encoded.append((piece.address, piece.instr))
                if piece.old_addr is not None:
                    instr_map[piece.old_addr] = piece.address
            elif piece.kind == "blockbr":
                target = block_map[piece.old_target]
                offset = (target - (piece.address + WORD_SIZE)) // WORD_SIZE
                encoded.append((piece.address,
                                Instruction(op=piece.op, rd=piece.rd,
                                            imm=offset)))
                if piece.old_addr is not None:
                    instr_map[piece.old_addr] = piece.address
            else:  # pragma: no cover
                raise AssertionError(piece.kind)

        text = bytearray(cursor - program.text_base)
        for addr, instr in sorted(encoded):
            offset = addr - program.text_base
            text[offset:offset + 4] = encode(instr).to_bytes(4, "little")

        inserted_ranges = [
            (pieces[index].address,
             pieces[index].address + pieces[index].size_bytes)
            for index in inserted_piece_indexes
            if pieces[index].size_bytes
        ]

        symbols = {}
        for name, addr in program.symbols.items():
            if addr in block_map:
                symbols[name] = block_map[addr]
            elif not program.contains_code(addr):
                symbols[name] = addr
        symbols["__cfc_error"] = error_sink

        new_program = Program(
            text=bytes(text), data=program.data,
            text_base=program.text_base, data_base=program.data_base,
            entry=program.text_base, symbols=symbols,
            source_name=f"{program.source_name}+{self.technique.name}")
        return InstrumentedProgram(
            program=new_program, original=program,
            technique_name=self.technique.name, policy=self.policy,
            block_map=block_map, instr_map=instr_map,
            inserted_ranges=inserted_ranges,
            check_addresses=check_addresses, error_sink=error_sink)

    # -- helpers ------------------------------------------------------------

    def _validate(self, cfg: ControlFlowGraph) -> None:
        for block in cfg:
            if block.exit_kind is ExitKind.INDIRECT:
                raise RewriteError(
                    "program uses register-indirect branches; static "
                    "relayout would break guest-computed code addresses "
                    "— run it under the DBT instead")
            if (block.exit_kind is ExitKind.RET
                    and self.technique.requires_whole_cfg):
                raise RewriteError(
                    f"{self.technique.name} cannot check dynamic branch "
                    "targets (ret); use an intra-procedural workload")

    def _emit_block_body(self, pieces: list[_Piece],
                         inserted: list[int], block: BasicBlock,
                         info: BlockInfo, cfg: ControlFlowGraph) -> None:
        technique = self.technique
        body = block.instructions
        terminator = block.terminator
        if terminator is not None and block.exit_kind not in (
                ExitKind.EXIT, ExitKind.HALT):
            body = body[:-1]

        for old_addr, instr in body:
            pieces.append(_Piece(kind="ins", instr=instr,
                                 old_addr=old_addr))

        kind = block.exit_kind
        if kind is ExitKind.FALLTHROUGH:
            target = block.end
            if target not in cfg.blocks:
                raise RewriteError(
                    f"block {block.start:#x} falls off the text section")
            self._append_snippet(pieces, inserted,
                                 technique.exit_items_direct(info, target))
        elif kind is ExitKind.JUMP:
            term_addr, term = terminator
            target = term.branch_target(term_addr)
            self._append_snippet(pieces, inserted,
                                 technique.exit_items_direct(info, target))
            pieces.append(_Piece(kind="blockbr", op=Op.JMP,
                                 old_target=target, old_addr=term_addr))
        elif kind is ExitKind.COND:
            term_addr, term = terminator
            taken = term.branch_target(term_addr)
            fallthrough = term_addr + WORD_SIZE
            self._append_snippet(
                pieces, inserted,
                technique.exit_items_cond(info, taken, fallthrough,
                                          _cond_desc(term)))
            pieces.append(_Piece(kind="blockbr", op=term.op, rd=term.rd,
                                 old_target=taken, old_addr=term_addr))
            # The fallthrough successor physically follows (blocks are
            # laid out in original order), so no extra jump is needed.
        elif kind is ExitKind.CALL:
            term_addr, term = terminator
            target = term.branch_target(term_addr)
            self._append_snippet(pieces, inserted,
                                 technique.exit_items_direct(info, target))
            pieces.append(_Piece(kind="blockbr", op=Op.CALL,
                                 old_target=target, old_addr=term_addr))
        elif kind is ExitKind.RET:
            term_addr, term = terminator
            capture = Instruction(op=Op.LD, rd=T1, rs=15, imm=0)
            self._append_snippet(
                pieces, inserted,
                [_raw(capture)] + technique.exit_items_indirect(info, T1))
            pieces.append(_Piece(kind="ins", instr=term,
                                 old_addr=term_addr))
        elif kind in (ExitKind.HALT, ExitKind.EXIT):
            pass
        else:  # pragma: no cover
            raise AssertionError(kind)

    def _append_snippet(self, pieces: list[_Piece], inserted: list[int],
                        items) -> None:
        snippet = lower_items(items, compact=False)
        if snippet.slots:
            inserted.append(len(pieces))
        pieces.append(_Piece(kind="snippet", snippet=snippet))


def _raw(instr: Instruction):
    from repro.checking.base import RawIns
    return RawIns(instr)


def instrument_program(program: Program, technique_name: str,
                       policy: Policy = Policy.ALLBB,
                       update_style=None) -> InstrumentedProgram:
    """One-shot static instrumentation by technique name."""
    from repro.checking import UpdateStyle, make_technique
    cfg = build_cfg(program)
    style = update_style if update_style is not None else UpdateStyle.JCC
    technique = make_technique(technique_name, update_style=style, cfg=cfg)
    return StaticRewriter(technique, policy).rewrite(program)
