"""Static binary instrumentation (compile-time deployment model)."""

from repro.instrument.rewriter import (InstrumentedProgram, RewriteError,
                                       StaticRewriter, instrument_program)
from repro.instrument.verifier import (VerificationReport,
                                       verify_instrumented)

__all__ = [
    "InstrumentedProgram", "RewriteError", "StaticRewriter",
    "instrument_program",
    "VerificationReport", "verify_instrumented",
]
