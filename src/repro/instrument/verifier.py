"""Static verification of instrumented programs.

A compiler-style validation pass: abstractly interpret a statically
instrumented binary, tracking the signature registers (PC', RTS and
the technique scratch) through every path of the *rewritten* CFG, and
prove that no check can fire on a legal execution — the necessary
condition of Section 4.4, established without running the program.

Two pieces of precision make this work on real instrumented code:

* **constant propagation** over the host-only registers: signature
  updates are built from immediates and other signature registers, so
  their values stay concrete; anything derived from guest computation
  is ⊤ (unknown),
* **branch correlation**: the Jcc update style inserts a mirror of the
  guest branch (same condition, same flags) right before it, creating
  CFG paths that are *infeasible* (mirror not-taken then original
  taken).  The verifier tracks which (flags-producer, condition)
  outcome each path assumed and prunes the contradictory edges —
  without this, every conditional signature update joins to ⊤.

A check the analysis cannot decide (e.g. after a return, whose target
statics cannot resolve) is *unproven*, not failed — the precision limit
every static verifier has.  A check that provably fires on a legal
path is a **violation**: a wrong delta constant, a missed update on one
diamond arm, a check against the wrong signature — real rewriter bugs,
found without executing the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.flags import COND_INVERSE
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import NUM_REGISTERS
from repro.cfg import build_cfg
from repro.cfg.basic_block import ExitKind
from repro.instrument.rewriter import InstrumentedProgram

#: the abstract "unknown" value
TOP = object()


def _join(a, b):
    if a is TOP or b is TOP:
        return TOP
    return a if a == b else TOP


class _State:
    """Tracked registers (r16+) over the constant-or-⊤ domain, plus the
    path's last flags producer and branch assumption."""

    __slots__ = ("regs", "flags_src", "assumed")

    def __init__(self, regs=None, flags_src=None, assumed=None):
        self.regs = list(regs) if regs is not None \
            else [TOP] * NUM_REGISTERS
        #: address of the instruction that produced the current FLAGS
        self.flags_src = flags_src
        #: (flags_src, cond, taken) this path assumed at the last
        #: conditional branch, for correlation pruning
        self.assumed = assumed

    def copy(self) -> "_State":
        return _State(self.regs, self.flags_src, self.assumed)

    def join(self, other: "_State") -> tuple["_State", bool]:
        changed = False
        merged = self.copy()
        for index in range(16, NUM_REGISTERS):
            joined = _join(self.regs[index], other.regs[index])
            if (joined is TOP) != (merged.regs[index] is TOP) or \
                    (joined is not TOP and joined != merged.regs[index]):
                merged.regs[index] = joined
                changed = True
        if merged.flags_src != other.flags_src:
            if merged.flags_src is not None:
                merged.flags_src = None
                changed = True
        if merged.assumed != other.assumed:
            if merged.assumed is not None:
                merged.assumed = None
                changed = True
        return merged, changed


@dataclass
class VerificationReport:
    """Result of statically verifying an instrumented program."""

    program_name: str
    #: check sites proven never to fire on legal paths
    proven: list[int] = field(default_factory=list)
    #: check sites the analysis could not decide (⊤ reached them)
    unproven: list[int] = field(default_factory=list)
    #: check sites that FIRE on some legal path: instrumentation bugs
    violations: list[tuple[int, int]] = field(default_factory=list)
    blocks_visited: int = 0

    @property
    def ok(self) -> bool:
        """No legal path trips a check."""
        return not self.violations

    @property
    def fully_proven(self) -> bool:
        return self.ok and not self.unproven

    def summary(self) -> str:
        return (f"{self.program_name}: {len(self.proven)} checks proven,"
                f" {len(self.unproven)} unproven,"
                f" {len(self.violations)} violations"
                f" ({self.blocks_visited} states visited)")


_MASK = 0xFFFFFFFF


def _step(state: _State, pc: int, instr: Instruction) -> None:
    """Abstract transfer function for one instruction."""
    regs = state.regs
    op = instr.op
    meta = instr.meta

    def get(reg):
        return regs[reg] if reg >= 16 else TOP

    def put(value) -> None:
        if instr.rd >= 16:
            regs[instr.rd] = value

    if meta.sets_flags:
        state.flags_src = pc

    if op is Op.MOVI:
        put(instr.imm & _MASK)
    elif op is Op.MOVHI:
        put((instr.imm & 0xFFFF) << 16)
    elif op is Op.MOVLO:
        current = get(instr.rd)
        put(TOP if current is TOP else
            (current & 0xFFFF0000) | (instr.imm & 0xFFFF))
    elif op is Op.MOV:
        put(get(instr.rs))
    elif op in (Op.LEA, Op.ADDI):
        value = get(instr.rs)
        put(TOP if value is TOP else (value + instr.imm) & _MASK)
    elif op is Op.SUBI:
        value = get(instr.rs)
        put(TOP if value is TOP else (value - instr.imm) & _MASK)
    elif op in (Op.LEA3, Op.ADD):
        a, b = get(instr.rs), get(instr.rt)
        put(TOP if a is TOP or b is TOP else (a + b) & _MASK)
    elif op in (Op.LSUB, Op.SUB):
        a, b = get(instr.rs), get(instr.rt)
        put(TOP if a is TOP or b is TOP else (a - b) & _MASK)
    elif op is Op.XOR:
        a, b = get(instr.rs), get(instr.rt)
        put(TOP if a is TOP or b is TOP else a ^ b)
    elif op is Op.OR:
        a, b = get(instr.rs), get(instr.rt)
        put(TOP if a is TOP or b is TOP else a | b)
    elif op is Op.AND:
        a, b = get(instr.rs), get(instr.rt)
        put(TOP if a is TOP or b is TOP else a & b)
    elif op is Op.XORI:
        value = get(instr.rs)
        put(TOP if value is TOP else value ^ (instr.imm & _MASK))
    elif op is Op.ANDI:
        value = get(instr.rs)
        put(TOP if value is TOP else value & instr.imm & _MASK)
    elif op is Op.SHRI:
        value = get(instr.rs)
        put(TOP if value is TOP else value >> (instr.imm & 31))
    elif op is Op.SHLI:
        value = get(instr.rs)
        put(TOP if value is TOP else (value << (instr.imm & 31)) & _MASK)
    elif op is Op.NEG:
        value = get(instr.rs)
        put(TOP if value is TOP else (-value) & _MASK)
    elif op is Op.NOT:
        value = get(instr.rs)
        put(TOP if value is TOP else (~value) & _MASK)
    elif op is Op.MOD:
        a, b = get(instr.rs), get(instr.rt)
        put(TOP if a is TOP or b is TOP or b == 0 else a % b)
    elif op is Op.MUL:
        a, b = get(instr.rs), get(instr.rt)
        put(TOP if a is TOP or b is TOP else (a * b) & _MASK)
    elif meta.cond is not None and meta.fmt is not None \
            and meta.fmt.value == "r2":
        # cmovcc: may or may not move — join both outcomes
        put(_join(get(instr.rd), get(instr.rs)))
    elif op in (Op.CMP, Op.TEST, Op.CMPI, Op.ST, Op.STB):
        pass   # no tracked register written
    else:
        # loads, pops, div results, anything else: unknown
        put(TOP)


def verify_instrumented(ip: InstrumentedProgram,
                        max_states: int = 100_000) -> VerificationReport:
    """Prove the necessary condition over the rewritten program."""
    program = ip.program
    cfg = build_cfg(program)
    report = VerificationReport(program_name=program.source_name)
    check_status: dict[int, str] = {}

    worklist: list[tuple[int, _State]] = [
        (cfg.entry_block.start, _State())]
    # Path-sensitive in the branch assumption: states only merge when
    # they carry the same (flags producer, condition, outcome), so the
    # mirror-branch correlation survives the re-convergence point right
    # before the original branch.
    seen: dict[tuple, _State] = {}

    while worklist and report.blocks_visited < max_states:
        block_start, state = worklist.pop()
        key = (block_start, state.assumed, state.flags_src)
        previous = seen.get(key)
        if previous is not None:
            merged, changed = previous.join(state)
            if not changed:
                continue
            seen[key] = merged
            state = merged.copy()
        else:
            seen[key] = state.copy()
        report.blocks_visited += 1

        block = cfg.block_at(block_start)
        for pc, instr in block.instructions:
            if pc in ip.check_addresses:
                status = _classify_check(state, instr)
                prior = check_status.get(pc)
                check_status[pc] = _worst(prior, status)
                if status == "violation" and prior != "violation":
                    report.violations.append((pc, block_start))
                if instr.op in (Op.JRNZ, Op.JRZ) and instr.rd >= 16:
                    # path condition on the fall-through: the checked
                    # register equals (jrnz) / differs from (jrz) zero
                    if instr.op is Op.JRNZ:
                        state.regs[instr.rd] = 0
                continue
            _step(state, pc, instr)

        _push_successors(cfg, block, state, worklist)
    for pc, status in sorted(check_status.items()):
        if status == "proven":
            report.proven.append(pc)
        elif status == "unproven":
            report.unproven.append(pc)
    return report


def _push_successors(cfg, block, state: _State, worklist) -> None:
    term = block.terminator
    if (block.exit_kind is ExitKind.COND and term is not None
            and term[1].meta.cond is not None):
        pc, instr = term
        cond = instr.meta.cond
        taken, fallthrough = (block.successors + [None, None])[:2]
        implied = _implied_outcome(state, cond)
        for successor, outcome in ((taken, True), (fallthrough, False)):
            if successor is None or successor not in cfg.blocks:
                continue
            if implied is not None and outcome != implied:
                continue   # correlated with an earlier branch: pruned
            next_state = state.copy()
            next_state.assumed = (state.flags_src, cond, outcome)
            worklist.append((successor, next_state))
        return
    for successor in block.successors:
        if successor in cfg.blocks:
            worklist.append((successor, state.copy()))
    if block.exit_kind is ExitKind.CALL:
        after = block.end
        if after in cfg.blocks:
            # the return site is reached with the callee's final state,
            # which we cannot track across ret: widen everything.
            worklist.append((after, _State()))


def _implied_outcome(state: _State, cond) -> bool | None:
    """Does the path's last branch assumption force this branch?"""
    if state.assumed is None or state.flags_src is None:
        return None
    src, assumed_cond, taken = state.assumed
    if src != state.flags_src:
        return None   # flags were rewritten since the assumption
    if assumed_cond == cond:
        return taken
    if COND_INVERSE.get(assumed_cond) == cond:
        return not taken
    return None


def _classify_check(state: _State, instr: Instruction) -> str:
    """Would this check fire given the abstract state?"""
    if instr.op is Op.JRNZ:
        value = state.regs[instr.rd] if instr.rd >= 16 else TOP
        if value is TOP:
            return "unproven"
        return "proven" if value == 0 else "violation"
    if instr.op is Op.JRZ:
        value = state.regs[instr.rd] if instr.rd >= 16 else TOP
        if value is TOP:
            return "unproven"
        return "proven" if value != 0 else "violation"
    if instr.op is Op.DIV:
        divisor = state.regs[instr.rt] if instr.rt >= 16 else TOP
        if divisor is TOP:
            return "unproven"
        return "proven" if divisor != 0 else "violation"
    # CFCSS's jnz checks compare through FLAGS; deciding them would
    # need flag-value tracking — report as unproven.
    return "unproven"


def _worst(a: str | None, b: str) -> str:
    order = {"proven": 0, "unproven": 1, "violation": 2}
    if a is None:
        return b
    return a if order[a] >= order[b] else b
