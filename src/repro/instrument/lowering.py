"""Lowering the instrumentation micro-IR to concrete instructions.

Shared by the static binary rewriter and the dynamic binary translator.
The two backends differ in *when* signature values are known:

* the DBT knows them at emit time (signature = guest block address), so
  :class:`LoadSig` compacts to a single ``movi`` when the value fits a
  signed 16-bit immediate (``compact=True``),
* the static rewriter knows them only after whole-program layout, so
  every LoadSig takes the fixed two-word ``movhi``+``movlo`` form —
  keeping block sizes independent of signature values and the layout a
  single pass (``compact=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.opcodes import Op
from repro.checking.base import (CheckedDiv, ErrorBranch, Item, LabelMark,
                                 LoadSig, LocalBranch, RawIns)


@dataclass
class Slot:
    """One lowered item with a fixed word size and, later, an address."""

    kind: str                  # "ins" | "loadsig" | "errbr" | "localbr"
    size: int                  # in words
    address: int = 0           # assigned by layout
    instr: Instruction | None = None
    rd: int = 0
    expr: object | None = None  #: SigExpr for "loadsig" slots
    op: Op | None = None
    label: str | None = None
    is_check: bool = False     #: True for check-div / error-branch slots


@dataclass
class LoweredSnippet:
    """A lowered item list plus its local label positions."""

    slots: list[Slot] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)  # label -> index

    @property
    def size_words(self) -> int:
        return sum(slot.size for slot in self.slots)


def lower_items(items: list[Item], compact: bool,
                resolver: Callable[[int], int] | None = None
                ) -> LoweredSnippet:
    """Lower items to slots.  ``compact`` requires ``resolver``."""
    if compact and resolver is None:
        raise ValueError("compact lowering needs a signature resolver")
    snippet = LoweredSnippet()
    for item in items:
        if isinstance(item, RawIns):
            snippet.slots.append(Slot(kind="ins", size=1, instr=item.instr))
        elif isinstance(item, LoadSig):
            if compact:
                value = item.expr.resolve(resolver) & 0xFFFFFFFF
                signed = value - 0x100000000 if value >= 0x80000000 else value
                if -0x8000 <= signed <= 0x7FFF:
                    snippet.slots.append(Slot(
                        kind="ins", size=1,
                        instr=Instruction(op=Op.MOVI, rd=item.rd,
                                          imm=signed)))
                else:
                    snippet.slots.append(Slot(
                        kind="ins", size=1,
                        instr=Instruction(op=Op.MOVHI, rd=item.rd,
                                          imm=(value >> 16) & 0xFFFF)))
                    snippet.slots.append(Slot(
                        kind="ins", size=1,
                        instr=Instruction(op=Op.MOVLO, rd=item.rd,
                                          imm=value & 0xFFFF)))
            else:
                slot = Slot(kind="loadsig", size=2, rd=item.rd)
                slot.expr = item.expr
                snippet.slots.append(slot)
        elif isinstance(item, ErrorBranch):
            snippet.slots.append(Slot(kind="errbr", size=1, op=item.op,
                                      rd=item.rd, is_check=True))
        elif isinstance(item, LocalBranch):
            snippet.slots.append(Slot(kind="localbr", size=1, op=item.op,
                                      rd=item.rd, label=item.label))
        elif isinstance(item, LabelMark):
            snippet.labels[item.name] = len(snippet.slots)
        elif isinstance(item, CheckedDiv):
            snippet.slots.append(Slot(
                kind="ins", size=1, is_check=True,
                instr=Instruction(op=Op.DIV, rd=item.rd, rs=item.rs,
                                  rt=item.rt)))
        else:
            raise TypeError(f"unknown instrumentation item: {item!r}")
    return snippet


def assign_addresses(snippet: LoweredSnippet, base: int) -> int:
    """Assign addresses to slots; returns the first address past them."""
    cursor = base
    for slot in snippet.slots:
        slot.address = cursor
        cursor += slot.size * WORD_SIZE
    return cursor


def encode_snippet(snippet: LoweredSnippet,
                   resolver: Callable[[int], int],
                   error_target: int) -> list[tuple[int, Instruction]]:
    """Produce (address, instruction) pairs for a laid-out snippet."""
    label_addr: dict[str, int] = {}
    for label, index in snippet.labels.items():
        if index < len(snippet.slots):
            label_addr[label] = snippet.slots[index].address
        else:
            # Label at the very end of the snippet: points past it.
            last = snippet.slots[-1]
            label_addr[label] = last.address + last.size * WORD_SIZE

    out: list[tuple[int, Instruction]] = []
    for slot in snippet.slots:
        if slot.kind == "ins":
            out.append((slot.address, slot.instr))
        elif slot.kind == "loadsig":
            value = slot.expr.resolve(resolver) & 0xFFFFFFFF
            out.append((slot.address,
                        Instruction(op=Op.MOVHI, rd=slot.rd,
                                    imm=(value >> 16) & 0xFFFF)))
            out.append((slot.address + WORD_SIZE,
                        Instruction(op=Op.MOVLO, rd=slot.rd,
                                    imm=value & 0xFFFF)))
        elif slot.kind == "errbr":
            offset = (error_target - (slot.address + WORD_SIZE)) // WORD_SIZE
            out.append((slot.address,
                        Instruction(op=slot.op, rd=slot.rd, imm=offset)))
        elif slot.kind == "localbr":
            target = label_addr[slot.label]
            offset = (target - (slot.address + WORD_SIZE)) // WORD_SIZE
            out.append((slot.address,
                        Instruction(op=slot.op, rd=slot.rd, imm=offset)))
        else:  # pragma: no cover
            raise AssertionError(slot.kind)
    return out


def check_slot_addresses(snippet: LoweredSnippet) -> list[int]:
    """Addresses of check instructions (error branches, check-divs)."""
    return [slot.address for slot in snippet.slots if slot.is_check]
