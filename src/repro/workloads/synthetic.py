"""Random structured program generation for property-based testing.

Generates deterministic, always-terminating R32 programs from a seed:
straight-line arithmetic, nested bounded loops, if/else diamonds,
scratch-memory traffic, and (optionally) leaf calls.  Every program
ends by emitting a register checksum, so output equivalence across
execution pipelines (native / static-instrumented / DBT) is a strong
oracle: the hypothesis suites assert that instrumentation never changes
behaviour and never reports an error on a fault-free run (the
necessary condition as a property test).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: registers the generator computes with (r10..r12 are loop counters,
#: r13 scratch addressing; r14/r15 reserved).
_WORK_REGS = [f"r{i}" for i in range(8)]
_LOOP_REGS = ["r10", "r11", "r12"]


@dataclass
class SyntheticSpec:
    """Generation parameters."""

    seed: int
    statements: int = 20        #: top-level statement budget
    max_depth: int = 2          #: loop/if nesting
    with_calls: bool = False    #: emit leaf functions + calls
    with_memory: bool = True    #: scratch loads/stores


class _Gen:
    def __init__(self, spec: SyntheticSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.lines: list[str] = []
        self.label_counter = 0
        self.functions: list[str] = []

    def fresh_label(self, prefix: str) -> str:
        self.label_counter += 1
        return f"{prefix}_{self.label_counter}"

    def emit(self, line: str) -> None:
        self.lines.append(f"    {line}")

    def reg(self) -> str:
        return self.rng.choice(_WORK_REGS)

    # -- statements -------------------------------------------------------

    def gen_arith(self) -> None:
        rd, rs, rt = self.reg(), self.reg(), self.reg()
        op = self.rng.choice(
            ["add", "sub", "and", "or", "xor", "mul", "fadd", "fmul"])
        self.emit(f"{op} {rd}, {rs}, {rt}")

    def gen_imm(self) -> None:
        rd, rs = self.reg(), self.reg()
        op = self.rng.choice(["addi", "subi", "andi", "ori", "xori",
                              "shli", "shri"])
        imm = (self.rng.randint(0, 7) if op in ("shli", "shri")
               else self.rng.randint(-100, 100))
        self.emit(f"{op} {rd}, {rs}, {imm}")

    def gen_memory(self) -> None:
        rd = self.reg()
        slot = self.rng.randint(0, 15) * 4
        self.emit("const r13, scratch")
        if self.rng.random() < 0.5:
            self.emit(f"st {rd}, r13, {slot}")
        else:
            self.emit(f"ld {rd}, r13, {slot}")

    def gen_if(self, depth: int) -> None:
        else_label = self.fresh_label("else")
        end_label = self.fresh_label("endif")
        ra, rb = self.reg(), self.reg()
        cond = self.rng.choice(["jz", "jnz", "jl", "jge", "jle", "jg",
                                "jb", "jae"])
        self.emit(f"cmp {ra}, {rb}")
        self.emit(f"{cond} {else_label}")
        self.gen_block(depth + 1, self.rng.randint(1, 3))
        self.emit(f"jmp {end_label}")
        self.lines.append(f"{else_label}:")
        self.gen_block(depth + 1, self.rng.randint(1, 3))
        self.lines.append(f"{end_label}:")

    def gen_loop(self, depth: int) -> None:
        loop_label = self.fresh_label("loop")
        counter = _LOOP_REGS[min(depth, len(_LOOP_REGS) - 1)]
        count = self.rng.randint(2, 6)
        self.emit(f"movi {counter}, 0")
        self.lines.append(f"{loop_label}:")
        self.gen_block(depth + 1, self.rng.randint(1, 4))
        self.emit(f"addi {counter}, {counter}, 1")
        self.emit(f"cmpi {counter}, {count}")
        self.emit(f"jl {loop_label}")

    def gen_call(self) -> None:
        if not self.functions:
            return
        self.emit(f"call {self.rng.choice(self.functions)}")

    def gen_statement(self, depth: int) -> None:
        choices = ["arith", "arith", "imm", "imm"]
        if self.spec.with_memory:
            choices.append("memory")
        if depth < self.spec.max_depth:
            choices += ["if", "loop"]
        if self.spec.with_calls and self.functions:
            choices.append("call")
        kind = self.rng.choice(choices)
        if kind == "arith":
            self.gen_arith()
        elif kind == "imm":
            self.gen_imm()
        elif kind == "memory":
            self.gen_memory()
        elif kind == "if":
            self.gen_if(depth)
        elif kind == "loop":
            self.gen_loop(depth)
        elif kind == "call":
            self.gen_call()

    def gen_block(self, depth: int, statements: int) -> None:
        for _ in range(statements):
            self.gen_statement(depth)

    def gen_function(self, name: str) -> list[str]:
        lines = [f"{name}:"]
        saved_lines = self.lines
        self.lines = []
        for _ in range(self.rng.randint(2, 5)):
            self.gen_statement(self.spec.max_depth)  # leaf: no nesting
        body, self.lines = self.lines, saved_lines
        return lines + body + ["    ret"]

    # -- top level ----------------------------------------------------------

    def generate(self) -> str:
        header = [".entry main", ".data", "scratch: .space 64", ".text"]
        functions: list[str] = []
        if self.spec.with_calls:
            for index in range(self.rng.randint(1, 2)):
                name = f"leaf_{index}"
                functions.extend(self.gen_function(name))
                self.functions.append(name)
        self.lines = []
        # Seed the work registers deterministically.
        init = [f"    movi {reg}, {self.rng.randint(-50, 50)}"
                for reg in _WORK_REGS]
        self.gen_block(0, self.spec.statements)
        checksum = ["    movi r1, 0"]
        for reg in _WORK_REGS:
            checksum += [f"    add r1, r1, {reg}"]
        checksum += ["    syscall 4", "    movi r1, 0", "    syscall 0"]
        return "\n".join(header + ["main:"] + init + self.lines
                         + checksum + functions) + "\n"


def generate_program_source(seed: int, statements: int = 20,
                            max_depth: int = 2,
                            with_calls: bool = False,
                            with_memory: bool = True) -> str:
    """Generate deterministic random R32 assembly from a seed."""
    spec = SyntheticSpec(seed=seed, statements=statements,
                         max_depth=max_depth, with_calls=with_calls,
                         with_memory=with_memory)
    return _Gen(spec).generate()


def generate_program(seed: int, **kwargs):
    """Generate and assemble a random program."""
    from repro.isa.assembler import assemble
    source = generate_program_source(seed, **kwargs)
    return assemble(source, name=f"<synthetic:{seed}>")
