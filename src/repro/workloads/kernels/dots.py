"""Dot-product / correlation FP kernels (179.art / 187.facerec
stand-ins): neural-layer weighted sums and sliding-window correlation.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, fill_words, header


def neural_layer(inputs: int = 64, neurons: int = 24,
                 repeats: int = 3) -> str:
    """F1-layer weighted sums, inner loop unrolled by 4 (art flavour)."""
    return header() + f"""
.data
vin:    .space {inputs * 4}
wts:    .space {inputs * neurons * 4}

.text
main:
    const r0, {inputs}
{fill_words("vin", "r0", 12321)}
    const r0, {inputs * neurons}
{fill_words("wts", "r0", 45654, label="fillw")}
    movi r1, 0
    movi r11, 0
rep:
    movi r2, 0              ; neuron
nloop:
    ; r6 = &wts[neuron][0], r7 = &vin[0]
    mov r6, r2
    muli r6, r6, {inputs * 4}
    const r7, wts
    lea3 r6, r7, r6
    const r7, vin
    movi r5, 0              ; acc
    movi r3, 0              ; k
kloop:
    ld r8, r6, 0
    ld r9, r7, 0
    fmul r8, r8, r9
    fadd r5, r5, r8
    ld r8, r6, 4
    ld r9, r7, 4
    fmul r8, r8, r9
    fadd r5, r5, r8
    ld r8, r6, 8
    ld r9, r7, 8
    fmul r8, r8, r9
    fadd r5, r5, r8
    ld r8, r6, 12
    ld r9, r7, 12
    fmul r8, r8, r9
    fadd r5, r5, r8
    lea r6, r6, 16
    lea r7, r7, 16
    addi r3, r3, 4
    cmpi r3, {inputs - inputs % 4}
    jl kloop
    ; winner-take-some: fold only activations above a threshold
    const r8, 0x10000000
    cmp r5, r8
    jb small_act
    fadd r1, r1, r5
    jmp next_neuron
small_act:
    mov r9, r5
    shri r9, r9, 4
    fadd r1, r1, r9
next_neuron:
    const r7, vin
    addi r2, r2, 1
    cmpi r2, {neurons}
    jl nloop
    addi r11, r11, 1
    cmpi r11, {repeats}
    jl rep
""" + emit_and_exit()


def correlate(signal: int = 200, window: int = 12,
              repeats: int = 3) -> str:
    """Sliding-window correlation against a fixed template (facerec
    flavour)."""
    return header() + f"""
.data
sig:    .space {(signal + window) * 4}
tmpl:   .space {window * 4}

.text
main:
    const r0, {signal + window}
{fill_words("sig", "r0", 98765)}
    const r0, {window}
{fill_words("tmpl", "r0", 13579, label="fillt")}
    movi r1, 0
    movi r11, 0
rep:
    const r2, sig
    movi r3, 0              ; window position
wloop:
    const r4, tmpl
    mov r5, r2
    movi r6, 0              ; acc
    movi r7, 0              ; k
corr:
    ld r8, r5, 0
    ld r9, r4, 0
    fmul r8, r8, r9
    fadd r6, r6, r8
    ld r8, r5, 4
    ld r9, r4, 4
    fmul r8, r8, r9
    fadd r6, r6, r8
    ld r8, r5, 8
    ld r9, r4, 8
    fmul r8, r8, r9
    fadd r6, r6, r8
    lea r5, r5, 12
    lea r4, r4, 12
    addi r7, r7, 3
    cmpi r7, {window - window % 3}
    jl corr
    ; track peak-ish values
    mov r8, r6
    shri r8, r8, 8
    fadd r1, r1, r8
    lea r2, r2, 4
    addi r3, r3, 1
    cmpi r3, {signal}
    jl wloop
    addi r11, r11, 1
    cmpi r11, {repeats}
    jl rep
""" + emit_and_exit()
