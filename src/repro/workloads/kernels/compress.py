"""Compression-flavoured integer kernels (the 164.gzip / 256.bzip2
stand-ins): run-length encoding and a shell sort over byte buffers.

Structural profile: very small basic blocks, high conditional-branch
density, byte loads/stores — the SPEC-Int shape that maximizes
signature-checking overhead in the paper's Figure 12.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, header


def rle_compress(buffer_bytes: int = 2048, passes: int = 1) -> str:
    """Run-length encode a synthetic run-structured buffer."""
    return header() + f"""
.data
src:    .space {buffer_bytes}
dst:    .space {buffer_bytes * 2}

.text
main:
    movi r0, 0              ; pass counter
    movi r1, 0              ; checksum
pass_loop:
    ; Fill src with runs whose length varies with the pass number:
    ; value(i) = ((i >> 3) + pass) & 15
    const r2, src
    movi r3, 0
    const r4, {buffer_bytes}
fill:
    mov r5, r3
    shri r5, r5, 3
    add r5, r5, r0
    andi r5, r5, 15
    lea3 r6, r2, r3
    stb r5, r6, 0
    addi r3, r3, 1
    cmp r3, r4
    jl fill

    ; RLE encode src -> dst
    movi r3, 0              ; read index
    movi r7, 0              ; write index
    const r8, dst
encode:
    cmp r3, r4
    jge done_encode
    lea3 r6, r2, r3
    ldb r5, r6, 0           ; run value
    movi r9, 0              ; run length
run:
    lea3 r6, r2, r3
    ldb r10, r6, 0
    cmp r10, r5
    jnz end_run
    addi r9, r9, 1
    addi r3, r3, 1
    cmp r3, r4
    jl run
end_run:
    lea3 r11, r8, r7
    stb r5, r11, 0
    stb r9, r11, 1
    addi r7, r7, 2
    jmp encode
done_encode:

    ; Fold dst into the checksum
    movi r3, 0
check:
    lea3 r6, r8, r3
    ldb r10, r6, 0
    add r1, r1, r10
    muli r1, r1, 31
    addi r3, r3, 1
    cmp r3, r7
    jl check

    addi r0, r0, 1
    cmpi r0, {passes}
    jl pass_loop
""" + emit_and_exit()


def shell_sort(elements: int = 256, passes: int = 1) -> str:
    """Shell sort LCG-filled words, then verify + checksum.

    Small blocks, a tight data-dependent inner loop, and a call/ret pair
    (the verify helper) so the RET checking policy has sites to hit.
    """
    return header() + f"""
.data
arr:    .space {elements * 4}

.text
main:
    movi r12, 0             ; pass
    movi r11, 0             ; checksum accumulator
outer_pass:
    ; fill with LCG values
    const r0, arr
    movi r2, 0
    const r3, {elements}
    const r1, 12345
    add r1, r1, r12
fill:
    const r13, 1664525
    mul r1, r1, r13
    const r13, 1013904223
    add r1, r1, r13
    mov r4, r1
    shri r4, r4, 8
    lea3 r5, r0, r2
    lea3 r5, r5, r2
    lea3 r5, r5, r2
    lea3 r5, r5, r2         ; r5 = arr + 4*i
    st r4, r5, 0
    addi r2, r2, 1
    cmp r2, r3
    jl fill

    ; shell sort with gap sequence n/2, n/4, ...
    const r6, {elements}
    shri r6, r6, 1          ; gap
gap_loop:
    cmpi r6, 0
    jz sorted
    mov r2, r6              ; i = gap
i_loop:
    cmp r2, r3
    jge next_gap
    ; temp = arr[i]
    mov r5, r2
    shli r5, r5, 2
    lea3 r5, r0, r5
    ld r4, r5, 0            ; temp
    mov r7, r2              ; j = i
j_loop:
    cmp r7, r6
    jl insert
    mov r8, r7
    sub r8, r8, r6          ; j - gap
    mov r9, r8
    shli r9, r9, 2
    lea3 r9, r0, r9
    ld r10, r9, 0           ; arr[j-gap]
    cmp r10, r4
    jbe insert
    ; arr[j] = arr[j-gap]
    mov r13, r7
    shli r13, r13, 2
    lea3 r13, r0, r13
    st r10, r13, 0
    mov r7, r8
    jmp j_loop
insert:
    mov r13, r7
    shli r13, r13, 2
    lea3 r13, r0, r13
    st r4, r13, 0
    addi r2, r2, 1
    jmp i_loop
next_gap:
    shri r6, r6, 1
    jmp gap_loop
sorted:
    call verify
    add r11, r11, r1
    addi r12, r12, 1
    cmpi r12, {passes}
    jl outer_pass
    mov r1, r11
""" + emit_and_exit() + f"""

; verify sortedness and fold into a checksum (r1 out)
verify:
    movi r1, 0
    movi r2, 1
    const r3, {elements}
    const r0, arr
vloop:
    cmp r2, r3
    jge vdone
    mov r5, r2
    shli r5, r5, 2
    lea3 r5, r0, r5
    ld r4, r5, 0
    ld r6, r5, -4
    cmp r6, r4
    ja vbad
    add r1, r1, r4
    addi r2, r2, 1
    jmp vloop
vbad:
    movi r1, 0xBAD
vdone:
    ret
"""
