"""Multithreaded benchmark kernels (the SPEC-style suite's MT wing).

These kernels exercise the guest-thread syscall ABI (services 16..22,
see docs/threads.md) under the deterministic preemptive scheduler:

* ``counters`` — embarrassingly parallel: N workers hash private LCG
  streams, the main thread joins them in spawn order and folds their
  return values into the checksum.  Pure context-switch traffic.
* ``ledger`` — contended shared state: workers deposit into one
  memory word under mutex 0, yielding between deposits to force
  interleavings; the final ledger value is order-independent
  (addition commutes) so the checksum is schedule-robust while the
  *schedule trace* still distinguishes quantum/policy/seed choices.
* ``relay`` — a hand-off chain: worker i spins on mutex-protected
  mailbox i, transforms the token, deposits it into mailbox i+1 (the
  final stage consumes).  Join-order and blocking-wake paths get
  dense coverage.

The kernels follow the single-threaded suite's contract (deterministic
output via EMIT_WORD + clean exit, compare-adjacent-to-branch flag
discipline, r14/r15 untouched) and add one more rule: worker entry
points receive their argument in r1 and terminate with THREAD_EXIT
(service 22), never by falling off the end.

Degradation contract: under a plain single-threaded CPU (no
``ThreadedMachine``) the thread services are no-ops, so every kernel
still terminates deterministically — the suite's generic halting tests
keep passing — but only an MT run produces the documented semantics.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, header, lcg_step


def counters(threads: int = 4, iters: int = 200,
             spin: int = 16) -> str:
    """N private LCG streams joined into one checksum."""
    return header() + f"""
.data
tids:   .space {threads * 4}

.text
main:
    movi r11, 1             ; worker index 1..{threads}
    const r12, tids
spawnloop:
    const r1, worker
    mov r2, r11             ; arg: stream index
    movi r3, 0              ; priority
    syscall 16              ; spawn -> r0 = tid
    st r0, r12, 0
    lea r12, r12, 4
    addi r11, r11, 1
    cmpi r11, {threads + 1}
    jl spawnloop
    movi r10, 0             ; checksum
    movi r11, 0
    const r12, tids
joinloop:
    ld r1, r12, 0
    syscall 17              ; join -> r0 = worker retval
    add r10, r10, r0
    lea r12, r12, 4
    addi r11, r11, 1
    cmpi r11, {threads}
    jl joinloop
""" + emit_and_exit("r10") + f"""
worker:
    mov r4, r1              ; stream index seeds the LCG
    const r5, 0x9E3779B9
    mul r4, r4, r5
    movi r2, 0
wloop:
{lcg_step("r4")}
    movi r6, 0
spinloop:
    addi r6, r6, 1
    cmpi r6, {spin}
    jl spinloop
    addi r2, r2, 1
    cmpi r2, {iters}
    jl wloop
    mov r1, r4
    syscall 22              ; thread_exit(checksum)
"""


def ledger(threads: int = 4, deposits: int = 40) -> str:
    """Mutex-protected shared accumulator with deliberate yields."""
    return header() + f"""
.data
balance: .space 4
tids:    .space {threads * 4}

.text
main:
    movi r11, 1
    const r12, tids
spawnloop:
    const r1, worker
    mov r2, r11
    movi r3, 0
    syscall 16
    st r0, r12, 0
    lea r12, r12, 4
    addi r11, r11, 1
    cmpi r11, {threads + 1}
    jl spawnloop
    movi r10, 0
    movi r11, 0
    const r12, tids
joinloop:
    ld r1, r12, 0
    syscall 17
    add r10, r10, r0
    lea r12, r12, 4
    addi r11, r11, 1
    cmpi r11, {threads}
    jl joinloop
    const r12, balance
    ld r0, r12, 0
    add r10, r10, r0        ; fold the shared ledger in
""" + emit_and_exit("r10") + f"""
worker:
    mov r4, r1              ; deposit seed
    const r5, 0x85EBCA6B
    mul r4, r4, r5
    movi r2, 0
dloop:
{lcg_step("r4")}
    movi r1, 0
    syscall 19              ; lock mutex 0
    const r6, balance
    ld r7, r6, 0
    add r7, r7, r4
    st r7, r6, 0
    movi r1, 0
    syscall 20              ; unlock mutex 0
    syscall 18              ; yield: invite contention
    addi r2, r2, 1
    cmpi r2, {deposits}
    jl dloop
    mov r1, r4
    syscall 22
"""


def relay(stages: int = 4, rounds: int = 24) -> str:
    """Token hand-off chain through mutex-guarded mailboxes.

    Mailbox i feeds stage i; stage i forwards into mailbox i+1 except
    the final stage, which consumes (so the pipeline drains and the
    feeder never stalls permanently).  All mailboxes share mutex 0,
    and every participant yields after each attempt — a deterministic
    condition-variable substitute.
    """
    return header() + f"""
.data
boxes:  .space {stages * 4}
tids:   .space {stages * 4}

.text
main:
    movi r11, 0
    const r12, tids
spawnloop:
    const r1, worker
    mov r2, r11             ; arg: stage index 0..{stages - 1}
    movi r3, 0              ; equal priority: under the priority
                            ; policy every pick is a seeded tie-break
                            ; (unequal priorities would livelock a
                            ; spin-yield pipeline: the top thread
                            ; always wins its own yield)
    syscall 16
    st r0, r12, 0
    lea r12, r12, 4
    addi r11, r11, 1
    cmpi r11, {stages}
    jl spawnloop
    ; feed tokens into mailbox 0
    movi r10, 0             ; round counter
    movi r9, 0x1234
    movi r4, 0              ; stalled-attempt counter
feed:
    movi r1, 0
    syscall 19              ; lock box array
    const r6, boxes
    ld r7, r6, 0
    cmpi r7, 0
    jnz feed_stall          ; box 0 still full: retry after unlock
    addi r9, r9, 0x111
    st r9, r6, 0
    addi r10, r10, 1
    jmp feed_unlock
feed_stall:
    addi r4, r4, 1
feed_unlock:
    movi r1, 0
    syscall 20
    syscall 18              ; yield so stages drain the chain
    const r5, {rounds * 256}
    cmp r4, r5
    jge bail                ; thread services inactive (plain CPU
                            ; fallback): nothing drains box 0 — exit
                            ; deterministically with the partial sum
    cmpi r10, {rounds}
    jl feed
    ; join the stages (each exits after {rounds} tokens); r10 already
    ; holds the fed-token count, stage checksums fold on top
    movi r11, 0
    const r12, tids
joinloop:
    ld r1, r12, 0
    syscall 17
    add r10, r10, r0
    lea r12, r12, 4
    addi r11, r11, 1
    cmpi r11, {stages}
    jl joinloop
bail:
""" + emit_and_exit("r10") + f"""
worker:
    mov r4, r1              ; stage index
    muli r5, r4, 4          ; input box offset
    movi r2, 0              ; tokens relayed
    movi r9, 0              ; running stage checksum
stage_loop:
    movi r1, 0
    syscall 19
    const r6, boxes
    add r6, r6, r5
    ld r7, r6, 0
    cmpi r7, 0
    jz stage_empty
    ; token available: the last stage consumes, others relay
    cmpi r4, {stages - 1}
    jz stage_consume
    ld r8, r6, 4            ; peek the next box
    cmpi r8, 0
    jnz stage_empty         ; downstream full: hold the token
    addi r7, r7, 7          ; transform the token
    st r7, r6, 4
    jmp stage_took
stage_consume:
    addi r7, r7, 7
stage_took:
    movi r8, 0
    st r8, r6, 0
    add r9, r9, r7
    addi r2, r2, 1
stage_empty:
    movi r1, 0
    syscall 20
    syscall 18
    cmpi r2, {rounds}
    jl stage_loop
    mov r1, r9
    syscall 22
"""
