"""Dense linear-algebra FP kernels (168.wupwise / 178.galgel / 177.mesa
stand-ins): blocked matrix multiply, Gauss-style elimination step, and
an unrolled 4x4 transform pipeline.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, fill_words, header


def matmul(n: int = 20, repeats: int = 2) -> str:
    """C = A*B on n x n fixed-point matrices, inner loop unrolled by 4."""
    return header() + f"""
.data
ma:     .space {n * n * 4}
mb:     .space {n * n * 4}
mc:     .space {n * n * 4}

.text
main:
    const r0, {n * n}
{fill_words("ma", "r0", 11111)}
    const r0, {n * n}
{fill_words("mb", "r0", 22222, label="fillb")}
    movi r1, 0              ; checksum
    movi r11, 0             ; repeat
rep:
    movi r2, 0              ; i
iloop:
    movi r3, 0              ; j
jloop:
    movi r4, 0              ; k
    movi r5, 0              ; acc
    ; &A[i][0]
    mov r6, r2
    muli r6, r6, {n * 4}
    const r7, ma
    lea3 r6, r7, r6
    ; &B[0][j]
    mov r7, r3
    shli r7, r7, 2
    const r8, mb
    lea3 r7, r8, r7
kloop:
    ; unrolled by 4: one large FP block
    ld r8, r6, 0
    ld r9, r7, 0
    fmul r8, r8, r9
    fadd r5, r5, r8
    ld r8, r6, 4
    ld r9, r7, {n * 4}
    fmul r8, r8, r9
    fadd r5, r5, r8
    ld r8, r6, 8
    ld r9, r7, {2 * n * 4}
    fmul r8, r8, r9
    fadd r5, r5, r8
    ld r8, r6, 12
    ld r9, r7, {3 * n * 4}
    fmul r8, r8, r9
    fadd r5, r5, r8
    lea r6, r6, 16
    lea r7, r7, {4 * n * 4}
    addi r4, r4, 4
    cmpi r4, {n - n % 4}
    jl kloop
    ; store C[i][j], fold checksum
    mov r8, r2
    muli r8, r8, {n * 4}
    mov r9, r3
    shli r9, r9, 2
    add r8, r8, r9
    const r9, mc
    lea3 r8, r9, r8
    st r5, r8, 0
    fadd r1, r1, r5
    addi r3, r3, 1
    cmpi r3, {n}
    jl jloop
    addi r2, r2, 1
    cmpi r2, {n}
    jl iloop
    addi r11, r11, 1
    cmpi r11, {repeats}
    jl rep
""" + emit_and_exit()


def transform4(vertices: int = 300) -> str:
    """4x4 matrix x vec4 transform, fully unrolled (mesa flavour):
    one enormous basic block per vertex."""
    rows = []
    for row in range(4):
        terms = []
        for col in range(4):
            coeff = (row * 4 + col) * 3 + 1
            accumulate = ("mov r9, r8" if col == 0
                          else "fadd r9, r9, r8")
            terms.append(f"""
    const r8, {coeff}
    fmul r8, r8, r{2 + col}
    {accumulate}""")
        rows.append("".join(terms) + f"""
    fadd r1, r1, r9
    st r9, r7, {row * 4}""")
    body = "".join(rows)
    return header() + f"""
.data
out:    .space 16

.text
main:
    movi r1, 0              ; checksum
    movi r10, 0             ; vertex
    const r7, out
vloop:
    ; synthesize vertex coordinates from the index
    mov r2, r10
    muli r2, r2, 7
    addi r2, r2, 1
    mov r3, r10
    muli r3, r3, 11
    addi r3, r3, 2
    mov r4, r10
    muli r4, r4, 13
    addi r4, r4, 3
    movi r5, 1
{body}
    addi r10, r10, 1
    cmpi r10, {vertices}
    jl vloop
""" + emit_and_exit()


def gauss_step(n: int = 28, repeats: int = 3) -> str:
    """One elimination sweep over an n x n matrix (galgel flavour)."""
    return header() + f"""
.data
m:      .space {n * n * 4}

.text
main:
    movi r1, 0
    movi r11, 0
rep:
    const r0, {n * n}
{fill_words("m", "r0", 33333)}
    ; eliminate column 0 using row 0
    const r0, m
    movi r2, 1              ; row i
eliminate:
    ; factor = M[i][0] (scaled)
    mov r3, r2
    muli r3, r3, {n * 4}
    lea3 r3, r0, r3         ; &M[i][0]
    ld r4, r3, 0
    shri r4, r4, 16         ; keep factors small
    ori r4, r4, 1
    movi r5, 0              ; column j
col:
    ; M[i][j] -= factor * M[0][j], unrolled by 2
    mov r6, r5
    shli r6, r6, 2
    lea3 r7, r0, r6         ; &M[0][j]
    lea3 r8, r3, r6         ; &M[i][j]
    ld r9, r7, 0
    fmul r9, r9, r4
    ld r10, r8, 0
    fsub r10, r10, r9
    st r10, r8, 0
    fadd r1, r1, r10
    ld r9, r7, 4
    fmul r9, r9, r4
    ld r10, r8, 4
    fsub r10, r10, r9
    st r10, r8, 4
    fadd r1, r1, r10
    addi r5, r5, 2
    cmpi r5, {n - n % 2}
    jl col
    addi r2, r2, 1
    cmpi r2, {n}
    jl eliminate
    addi r11, r11, 1
    cmpi r11, {repeats}
    jl rep
""" + emit_and_exit()
