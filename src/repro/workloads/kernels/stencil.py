"""Stencil-flavoured FP kernels (171.swim / 172.mgrid / 173.applu /
301.apsi stand-ins): 1-D/2-D relaxation sweeps with unrolled,
FP-heavy loop bodies.

Structural profile: *large basic blocks* and expensive fadd/fmul
instructions — the SPEC-Fp shape.  Per the paper, both properties
shrink relative checking overhead (fewer block boundaries per cycle)
and shift the branch-error mass from category D to category C
(bigger blocks ⇒ more "middle" to land in).
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, fill_words, header


def stencil1d(points: int = 256, sweeps: int = 6, unroll: int = 4) -> str:
    """Unrolled 3-point relaxation: a[i] = (a[i-1] + 2a[i] + a[i+1])."""
    body = []
    for u in range(unroll):
        offset = u * 4
        body.append(f"""
    ld r4, r3, {offset - 4}
    ld r5, r3, {offset}
    ld r6, r3, {offset + 4}
    fadd r7, r4, r6
    fadd r7, r7, r5
    fadd r7, r7, r5
    mov r8, r7
    shri r8, r8, 2
    st r8, r3, {offset}
    fmul r9, r8, r5
    fadd r1, r1, r9""")
    unrolled = "".join(body)
    return header() + f"""
.data
a:      .space {(points + 2 * unroll) * 4}

.text
main:
    const r0, {points}
{fill_words("a", "r0", 314159)}
    movi r1, 0              ; checksum
    movi r10, 0             ; sweep
sweep:
    const r3, a+4
    movi r2, 0              ; i
row:
{unrolled}
    lea r3, r3, {unroll * 4}
    addi r2, r2, {unroll}
    cmpi r2, {points - unroll}
    jl row
    addi r10, r10, 1
    cmpi r10, {sweeps}
    jl sweep
""" + emit_and_exit()


def stencil2d(width: int = 24, height: int = 24, sweeps: int = 3) -> str:
    """5-point 2-D stencil with an unrolled-by-2 inner loop."""
    row_bytes = width * 4
    return header() + f"""
.data
g:      .space {width * height * 4}

.text
main:
    const r0, {width * height}
{fill_words("g", "r0", 271828)}
    movi r1, 0              ; checksum
    movi r10, 0             ; sweep
sweep:
    movi r2, 1              ; y
yloop:
    ; r3 = &g[y][1]
    mov r3, r2
    muli r3, r3, {row_bytes}
    const r4, g+4
    lea3 r3, r4, r3
    movi r5, 1              ; x
xloop:
    ; two stencil points per iteration: one big block
    ld r4, r3, 0
    ld r6, r3, -4
    ld r7, r3, 4
    ld r8, r3, {-row_bytes}
    ld r9, r3, {row_bytes}
    fadd r6, r6, r7
    fadd r8, r8, r9
    fadd r6, r6, r8
    fadd r6, r6, r4
    mov r7, r6
    shri r7, r7, 2
    st r7, r3, 0
    fmul r9, r7, r4
    fadd r1, r1, r9
    ld r4, r3, 4
    ld r6, r3, 0
    ld r7, r3, 8
    ld r8, r3, {4 - row_bytes}
    ld r9, r3, {4 + row_bytes}
    fadd r6, r6, r7
    fadd r8, r8, r9
    fadd r6, r6, r8
    fadd r6, r6, r4
    mov r7, r6
    shri r7, r7, 2
    st r7, r3, 4
    fmul r9, r7, r4
    fadd r1, r1, r9
    lea r3, r3, 8
    addi r5, r5, 2
    cmpi r5, {width - 1}
    jl xloop
    addi r2, r2, 1
    cmpi r2, {height - 1}
    jl yloop
    addi r10, r10, 1
    cmpi r10, {sweeps}
    jl sweep
""" + emit_and_exit()


def trisolve(size: int = 48, systems: int = 8) -> str:
    """Forward substitution on a synthetic lower-triangular system
    (173.applu flavour): growing inner dot-product blocks."""
    return header() + f"""
.data
x:      .space {size * 4}

.text
main:
    movi r1, 0              ; checksum
    movi r11, 0             ; system counter
system:
    const r0, x
    movi r2, 0              ; row i
row:
    ; b_i = (i * 1009 + system * 37), fixed "matrix" A[i][j] = (i+2j+1)
    mov r3, r2
    muli r3, r3, 1009
    mov r4, r11
    muli r4, r4, 37
    add r3, r3, r4          ; acc = b_i
    movi r5, 0              ; j
dot:
    cmp r5, r2
    jge solved
    ; acc -= A(i,j) * x[j], two j per iteration when possible
    mov r6, r5
    shli r6, r6, 1
    add r6, r6, r2
    addi r6, r6, 1          ; A(i,j)
    mov r7, r5
    shli r7, r7, 2
    lea3 r7, r0, r7
    ld r8, r7, 0
    fmul r6, r6, r8
    fsub r3, r3, r6
    addi r5, r5, 1
    jmp dot
solved:
    ; x[i] = acc / (A(i,i) which is 3i+1)
    mov r6, r2
    muli r6, r6, 3
    addi r6, r6, 1
    fdiv r3, r3, r6
    mov r7, r2
    shli r7, r7, 2
    lea3 r7, r0, r7
    st r3, r7, 0
    fadd r1, r1, r3
    addi r2, r2, 1
    cmpi r2, {size}
    jl row
    addi r11, r11, 1
    cmpi r11, {systems}
    jl system
""" + emit_and_exit()
