"""Placement/routing-flavoured integer kernels (175.vpr / 300.twolf
stand-ins): a grid cost walk and a simulated-annealing-style swap loop.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, header


def grid_route(width: int = 16, height: int = 16, routes: int = 40) -> str:
    """Greedy cost-directed walks across a synthetic cost grid."""
    cells = width * height
    return header() + f"""
.data
grid:   .space {cells * 4}

.text
main:
    ; build cost grid: cost(x,y) = ((x*13 + y*7) % 23) + 1
    const r0, grid
    movi r2, 0              ; y
gy:
    movi r3, 0              ; x
gx:
    mov r4, r3
    muli r4, r4, 13
    mov r5, r2
    muli r5, r5, 7
    add r4, r4, r5
    movi r5, 23
    mod r4, r4, r5
    addi r4, r4, 1
    ; store at grid[(y*W + x)*4]
    mov r5, r2
    muli r5, r5, {width}
    add r5, r5, r3
    shli r5, r5, 2
    lea3 r5, r0, r5
    st r4, r5, 0
    addi r3, r3, 1
    cmpi r3, {width}
    jl gx
    addi r2, r2, 1
    cmpi r2, {height}
    jl gy

    movi r1, 0              ; checksum (total route cost)
    movi r9, 0              ; route counter
route_loop:
    ; walk from (route % W, 0) to bottom, greedily stepping to the
    ; cheaper of (x-1,y+1), (x,y+1), (x+1,y+1)
    mov r3, r9
    movi r5, {width}
    mod r3, r3, r5          ; x
    movi r2, 0              ; y
step:
    ; cost of straight-down candidate
    mov r5, r2
    addi r5, r5, 1
    cmpi r5, {height}
    jge route_done
    ; base index of row y+1
    mov r6, r5
    muli r6, r6, {width}
    ; straight
    add r7, r6, r3
    shli r7, r7, 2
    lea3 r7, r0, r7
    ld r8, r7, 0            ; cost straight
    movi r10, 0             ; best dx = 0
    ; left candidate
    cmpi r3, 0
    jz try_right
    mov r7, r6
    add r7, r7, r3
    subi r7, r7, 1
    shli r7, r7, 2
    lea3 r7, r0, r7
    ld r11, r7, 0
    cmp r11, r8
    jae try_right
    mov r8, r11
    movi r10, -1
try_right:
    cmpi r3, {width - 1}
    jge chose
    mov r7, r6
    add r7, r7, r3
    addi r7, r7, 1
    shli r7, r7, 2
    lea3 r7, r0, r7
    ld r11, r7, 0
    cmp r11, r8
    jae chose
    mov r8, r11
    movi r10, 1
chose:
    add r1, r1, r8
    add r3, r3, r10
    addi r2, r2, 1
    jmp step
route_done:
    muli r1, r1, 5
    addi r9, r9, 1
    cmpi r9, {routes}
    jl route_loop
""" + emit_and_exit()


def anneal(cells: int = 128, moves: int = 800) -> str:
    """Annealing-style swap/accept loop over a placement array."""
    return header() + f"""
.data
place:  .space {cells * 4}

.text
main:
    ; initial placement: place[i] = (i * 37) % cells
    const r0, place
    movi r2, 0
init:
    mov r3, r2
    muli r3, r3, 37
    movi r4, {cells}
    mod r3, r3, r4
    mov r4, r2
    shli r4, r4, 2
    lea3 r4, r0, r4
    st r3, r4, 0
    addi r2, r2, 1
    cmpi r2, {cells}
    jl init

    movi r1, 0              ; accepted-move checksum
    const r10, 777          ; LCG
    movi r9, 0              ; move counter
move_loop:
    ; pick two pseudo-random slots a, b
    const r13, 1664525
    mul r10, r10, r13
    const r13, 1013904223
    add r10, r10, r13
    mov r2, r10
    shri r2, r2, 8
    movi r4, {cells}
    mod r2, r2, r4          ; a
    mov r3, r10
    shri r3, r3, 16
    mod r3, r3, r4          ; b
    ; cost delta heuristic: accept when (place[a]^place[b]) & 3 != 3
    mov r5, r2
    shli r5, r5, 2
    lea3 r5, r0, r5
    ld r6, r5, 0
    mov r7, r3
    shli r7, r7, 2
    lea3 r7, r0, r7
    ld r8, r7, 0
    mov r11, r6
    xor r11, r11, r8
    andi r11, r11, 3
    cmpi r11, 3
    jz rejected
    ; swap
    st r8, r5, 0
    st r6, r7, 0
    add r1, r1, r11
    muli r1, r1, 9
rejected:
    addi r9, r9, 1
    cmpi r9, {moves}
    jl move_loop

    ; fold placement into checksum
    movi r2, 0
fold:
    mov r4, r2
    shli r4, r4, 2
    lea3 r4, r0, r4
    ld r5, r4, 0
    add r1, r1, r5
    addi r2, r2, 1
    cmpi r2, {cells}
    jl fold
""" + emit_and_exit()
