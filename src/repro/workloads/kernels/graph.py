"""Graph-flavoured integer kernels (181.mcf / 255.vortex stand-ins):
edge-list relaxation and an open-addressing hash table.

Pointer-chasing loads, data-dependent branches, small blocks.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, header


def edge_relax(nodes: int = 64, rounds: int = 12) -> str:
    """Bellman-Ford-style relaxation over a synthetic ring+chords graph.

    Edges are generated in-guest: node i connects to (i+1) % n and
    (i*7+3) % n with LCG-ish weights.
    """
    return header() + f"""
.data
dist:   .space {nodes * 4}

.text
main:
    const r0, dist
    movi r2, 0
    const r3, {nodes}
    ; dist[0] = 0, dist[i>0] = big
init:
    mov r4, r2
    shli r4, r4, 2
    lea3 r4, r0, r4
    const r5, 0x0FFFFFFF
    cmpi r2, 0
    jnz store_big
    movi r5, 0
store_big:
    st r5, r4, 0
    addi r2, r2, 1
    cmp r2, r3
    jl init

    movi r6, 0              ; round
round_loop:
    movi r2, 0              ; node i
node_loop:
    ; load dist[i]
    mov r4, r2
    shli r4, r4, 2
    lea3 r4, r0, r4
    ld r5, r4, 0
    const r13, 0x0FFFFFFF
    cmp r5, r13
    jae next_node           ; unreachable so far

    ; edge 1: i -> (i+1) % n, weight = (i % 9) + 1
    mov r7, r2
    addi r7, r7, 1
    cmp r7, r3
    jl e1_ok
    movi r7, 0
e1_ok:
    movi r8, 9
    mov r9, r2
    mod r9, r9, r8
    addi r9, r9, 1          ; weight
    add r9, r9, r5          ; cand = dist[i] + w
    mov r10, r7
    shli r10, r10, 2
    lea3 r10, r0, r10
    ld r11, r10, 0
    cmp r9, r11
    jae edge2
    st r9, r10, 0           ; relax
edge2:
    ; edge 2: i -> (i*7+3) % n, weight = (i % 5) + 2
    mov r7, r2
    muli r7, r7, 7
    addi r7, r7, 3
    mod r7, r7, r3
    movi r8, 5
    mov r9, r2
    mod r9, r9, r8
    addi r9, r9, 2
    add r9, r9, r5
    mov r10, r7
    shli r10, r10, 2
    lea3 r10, r0, r10
    ld r11, r10, 0
    cmp r9, r11
    jae next_node
    st r9, r10, 0
next_node:
    addi r2, r2, 1
    cmp r2, r3
    jl node_loop
    addi r6, r6, 1
    cmpi r6, {rounds}
    jl round_loop

    ; checksum distances
    movi r1, 0
    movi r2, 0
check:
    mov r4, r2
    shli r4, r4, 2
    lea3 r4, r0, r4
    ld r5, r4, 0
    add r1, r1, r5
    muli r1, r1, 13
    addi r2, r2, 1
    cmp r2, r3
    jl check
""" + emit_and_exit()


def hash_table(operations: int = 600, buckets: int = 256) -> str:
    """Open-addressing (linear probe) insert/lookup mix with call/ret.

    The probe loop is data-dependent; the hash function is a small
    callee so RET-policy checks get exercised per operation.
    """
    return header() + f"""
.data
keys:   .space {buckets * 4}
vals:   .space {buckets * 4}

.text
main:
    movi r1, 0              ; checksum
    const r10, 99991        ; LCG state
    movi r11, 0             ; op counter
op_loop:
    ; next pseudo-random key (never 0: 0 marks an empty slot)
    const r13, 1664525
    mul r10, r10, r13
    const r13, 1013904223
    add r10, r10, r13
    mov r2, r10
    shri r2, r2, 10
    andi r2, r2, 511        ; small key space: repeats cause real hits
    ori r2, r2, 1           ; key != 0
    call hash               ; r0 = hash(r2)

    ; probe
    const r4, keys
    const r5, vals
    movi r6, 0              ; probes
probe:
    mov r7, r0
    shli r7, r7, 2
    lea3 r8, r4, r7
    ld r9, r8, 0
    cmpi r9, 0
    jz do_insert
    cmp r9, r2
    jz do_hit
    addi r0, r0, 1
    const r13, {buckets - 1}
    and r0, r0, r13
    addi r6, r6, 1
    cmpi r6, {buckets}
    jl probe
    jmp op_next             ; table full: skip
do_insert:
    st r2, r8, 0
    lea3 r8, r5, r7
    st r11, r8, 0
    jmp op_next
do_hit:
    lea3 r8, r5, r7
    ld r9, r8, 0
    add r1, r1, r9
    muli r1, r1, 7
op_next:
    addi r11, r11, 1
    cmpi r11, {operations}
    jl op_loop
""" + emit_and_exit() + f"""

; r0 = hash(r2): xorshift-style mix reduced mod table size
hash:
    mov r0, r2
    mov r3, r0
    shri r3, r3, 7
    xor r0, r0, r3
    muli r0, r0, 31
    mov r3, r0
    shri r3, r3, 3
    xor r0, r0, r3
    const r3, {buckets - 1}
    and r0, r0, r3
    ret
"""
