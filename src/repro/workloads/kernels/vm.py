"""Interpreter-flavoured integer kernel (the 176.gcc / 253.perlbmk
family): a little stack-machine bytecode interpreter.

Two dispatch flavours:

* ``stack_vm(jump_table=True)`` — indirect dispatch through a table of
  code addresses (``jmpr``).  This is the kernel that stresses the
  DBT's indirect-branch path; it cannot be statically rewritten.
* ``stack_vm(jump_table=False)`` — cascaded compare-and-branch
  dispatch, statically rewritable, extremely branchy.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, header

# Bytecode: one opcode per word, immediates inline.
OP_PUSHI, OP_ADD, OP_SUB, OP_MUL, OP_DUP, OP_SWAP, OP_JNZB, OP_OUT, \
    OP_HALT = range(9)


def _demo_bytecode(loop_count: int) -> list[int]:
    """A program computing an iterated polynomial mix: roughly
    ``acc = acc*3 + i`` folded ``loop_count`` times, emitting per-step
    values the checksum folds."""
    return [
        OP_PUSHI, 1,              # acc
        OP_PUSHI, loop_count,     # counter
        # loop:                   (pc 4)
        OP_SWAP,
        OP_DUP,
        OP_PUSHI, 3,
        OP_MUL,
        OP_ADD,                   # acc = acc + acc*3  (keeps growing)
        OP_PUSHI, 7,
        OP_ADD,
        OP_OUT,                   # fold current acc
        OP_SWAP,
        OP_PUSHI, 1,
        OP_SUB,
        OP_DUP,
        OP_JNZB, 4,               # jump back to loop while counter != 0
        OP_HALT,
    ]


def stack_vm(loop_count: int = 400, jump_table: bool = True) -> str:
    code = _demo_bytecode(loop_count)
    words = ", ".join(str(w) for w in code)
    dispatch = _table_dispatch() if jump_table else _cascade_dispatch()
    return header() + f"""
.data
bytecode:   .word {words}
vmstack:    .space 512
.align 4
table:      .word op_pushi, op_add, op_sub, op_mul, op_dup, op_swap, op_jnzb, op_out, op_halt

.text
main:
    movi r1, 0              ; checksum
    const r2, bytecode      ; code base
    movi r3, 0              ; vm pc (word index)
    const r4, vmstack
    movi r5, 0              ; stack depth (words)
fetch:
    mov r6, r3
    shli r6, r6, 2
    lea3 r6, r2, r6
    ld r7, r6, 0            ; opcode
    addi r3, r3, 1
{dispatch}
op_pushi:
    mov r6, r3
    shli r6, r6, 2
    lea3 r6, r2, r6
    ld r8, r6, 0
    addi r3, r3, 1
    mov r6, r5
    shli r6, r6, 2
    lea3 r6, r4, r6
    st r8, r6, 0
    addi r5, r5, 1
    jmp fetch
op_add:
    subi r5, r5, 1
    mov r6, r5
    shli r6, r6, 2
    lea3 r6, r4, r6
    ld r8, r6, 0
    ld r9, r6, -4
    add r9, r9, r8
    st r9, r6, -4
    jmp fetch
op_sub:
    subi r5, r5, 1
    mov r6, r5
    shli r6, r6, 2
    lea3 r6, r4, r6
    ld r8, r6, 0
    ld r9, r6, -4
    sub r9, r9, r8
    st r9, r6, -4
    jmp fetch
op_mul:
    subi r5, r5, 1
    mov r6, r5
    shli r6, r6, 2
    lea3 r6, r4, r6
    ld r8, r6, 0
    ld r9, r6, -4
    mul r9, r9, r8
    st r9, r6, -4
    jmp fetch
op_dup:
    mov r6, r5
    shli r6, r6, 2
    lea3 r6, r4, r6
    ld r8, r6, -4
    st r8, r6, 0
    addi r5, r5, 1
    jmp fetch
op_swap:
    mov r6, r5
    shli r6, r6, 2
    lea3 r6, r4, r6
    ld r8, r6, -4
    ld r9, r6, -8
    st r8, r6, -8
    st r9, r6, -4
    jmp fetch
op_jnzb:
    mov r6, r3
    shli r6, r6, 2
    lea3 r6, r2, r6
    ld r8, r6, 0            ; branch target (vm pc)
    addi r3, r3, 1
    subi r5, r5, 1
    mov r6, r5
    shli r6, r6, 2
    lea3 r6, r4, r6
    ld r9, r6, 0
    cmpi r9, 0
    jz fetch
    mov r3, r8
    jmp fetch
op_out:
    mov r6, r5
    shli r6, r6, 2
    lea3 r6, r4, r6
    ld r8, r6, -4
    add r1, r1, r8
    muli r1, r1, 17
    jmp fetch
op_halt:
""" + emit_and_exit()


def _table_dispatch() -> str:
    return """
    ; dispatch: target = table[opcode]
    const r8, table
    mov r9, r7
    shli r9, r9, 2
    lea3 r9, r8, r9
    ld r10, r9, 0
    jmpr r10
"""


def _cascade_dispatch() -> str:
    lines = ["    ; dispatch: cascaded compares"]
    names = ["op_pushi", "op_add", "op_sub", "op_mul", "op_dup",
             "op_swap", "op_jnzb", "op_out", "op_halt"]
    for number, name in enumerate(names):
        lines.append(f"    cmpi r7, {number}")
        lines.append(f"    jz {name}")
    lines.append("    jmp op_halt        ; unknown opcode: stop")
    return "\n".join(lines) + "\n"
