"""Particle/physics FP kernels (188.ammp / 191.fma3d / 200.sixtrack /
183.equake / 189.lucas stand-ins): pairwise force accumulation, element
updates, particle tracking, sparse matrix-vector product, and a
butterfly mixing pass.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, fill_words, header


def nbody_forces(particles: int = 24, steps: int = 4) -> str:
    """O(n^2) pairwise force accumulation with a big unrolled body."""
    return header() + f"""
.data
px:     .space {particles * 4}
pv:     .space {particles * 4}

.text
main:
    const r0, {particles}
{fill_words("px", "r0", 44444)}
    movi r1, 0              ; checksum
    movi r11, 0             ; step
step:
    const r0, px
    const r10, pv
    movi r2, 0              ; i
iloop:
    mov r4, r2
    shli r4, r4, 2
    lea3 r4, r0, r4
    ld r5, r4, 0            ; x_i
    movi r6, 0              ; force acc
    movi r3, 0              ; j
jloop:
    cmp r3, r2
    jz jnext
    mov r7, r3
    shli r7, r7, 2
    lea3 r7, r0, r7
    ld r8, r7, 0            ; x_j
    fsub r9, r8, r5         ; dx
    mov r12, r9
    shri r12, r12, 16
    ori r12, r12, 1         ; softened |dx| proxy, never 0
    fmul r13, r9, r9
    fdiv r13, r13, r12      ; dx^2 / |dx|
    fadd r6, r6, r13
jnext:
    addi r3, r3, 1
    cmpi r3, {particles}
    jl jloop
    ; integrate velocity and fold
    mov r7, r2
    shli r7, r7, 2
    lea3 r7, r10, r7
    ld r8, r7, 0
    fadd r8, r8, r6
    st r8, r7, 0
    fadd r1, r1, r8
    addi r2, r2, 1
    cmpi r2, {particles}
    jl iloop
    addi r11, r11, 1
    cmpi r11, {steps}
    jl step
""" + emit_and_exit()


def particle_track(particles: int = 40, turns: int = 25) -> str:
    """Sixtrack flavour: per-turn phase-space map, fully unrolled body."""
    return header() + f"""
.data
state:  .space {particles * 8}

.text
main:
    const r0, {particles * 2}
{fill_words("state", "r0", 55555)}
    movi r1, 0
    movi r11, 0             ; turn
turn:
    const r0, state
    movi r2, 0              ; particle
ploop:
    mov r3, r2
    shli r3, r3, 3
    lea3 r3, r0, r3
    ld r4, r3, 0            ; x
    ld r5, r3, 4            ; p
    ; one-turn map: x' = x + p/4 + x*p>>20 ; p' = p - x/8 + 3
    mov r6, r5
    shri r6, r6, 2
    fadd r4, r4, r6
    fmul r7, r4, r5
    mov r8, r7
    shri r8, r8, 20
    fadd r4, r4, r8
    mov r6, r4
    shri r6, r6, 3
    fsub r5, r5, r6
    const r6, 3
    fadd r5, r5, r6
    st r4, r3, 0
    st r5, r3, 4
    fadd r1, r1, r4
    fmul r9, r4, r5
    fadd r1, r1, r9
    addi r2, r2, 1
    cmpi r2, {particles}
    jl ploop
    addi r11, r11, 1
    cmpi r11, {turns}
    jl turn
""" + emit_and_exit()


def spmv(rows: int = 48, nnz_per_row: int = 6, repeats: int = 6) -> str:
    """Sparse matrix-vector product with synthetic column pattern
    (equake flavour): col(i,k) = (i*3 + k*k) % rows."""
    return header() + f"""
.data
vin:    .space {rows * 4}
vout:   .space {rows * 4}

.text
main:
    const r0, {rows}
{fill_words("vin", "r0", 66666)}
    movi r1, 0
    movi r11, 0
rep:
    const r0, vin
    const r10, vout
    movi r2, 0              ; row i
iloop:
    movi r5, 0              ; acc
    movi r3, 0              ; k
kloop:
    ; col = (i*3 + k*k) % rows ; a = (i + k*7 + 1)
    mov r6, r2
    muli r6, r6, 3
    mov r7, r3
    mul r7, r7, r7
    add r6, r6, r7
    const r7, {rows}
    mod r6, r6, r7
    shli r6, r6, 2
    lea3 r6, r0, r6
    ld r8, r6, 0            ; vin[col]
    mov r9, r3
    muli r9, r9, 7
    add r9, r9, r2
    addi r9, r9, 1
    fmul r8, r8, r9
    fadd r5, r5, r8
    addi r3, r3, 1
    cmpi r3, {nnz_per_row}
    jl kloop
    mov r6, r2
    shli r6, r6, 2
    lea3 r6, r10, r6
    st r5, r6, 0
    fadd r1, r1, r5
    addi r2, r2, 1
    cmpi r2, {rows}
    jl iloop
    addi r11, r11, 1
    cmpi r11, {repeats}
    jl rep
""" + emit_and_exit()


def butterfly(size_log2: int = 8, repeats: int = 3) -> str:
    """FFT-butterfly-shaped mixing passes (lucas flavour)."""
    size = 1 << size_log2
    return header() + f"""
.data
buf:    .space {size * 4}

.text
main:
    const r0, {size}
{fill_words("buf", "r0", 77777)}
    movi r1, 0
    movi r11, 0
rep:
    const r0, buf
    movi r2, 1              ; stride
stage:
    movi r3, 0              ; i
pair:
    ; partner = i + stride; butterfly on (buf[i], buf[partner])
    mov r4, r3
    shli r4, r4, 2
    lea3 r4, r0, r4
    mov r5, r2
    shli r5, r5, 2
    lea3 r5, r4, r5
    ld r6, r4, 0
    ld r7, r5, 0
    fadd r8, r6, r7
    fsub r9, r6, r7
    ; twiddle: scale the difference by (stride + 3)
    mov r10, r2
    addi r10, r10, 3
    fmul r9, r9, r10
    st r8, r4, 0
    st r9, r5, 0
    fadd r1, r1, r8
    ; advance i: skip partner ranges like a real butterfly
    addi r3, r3, 1
    mov r6, r3
    and r6, r6, r2
    cmpi r6, 0
    jz pair_check
    add r3, r3, r2
pair_check:
    const r6, {size}
    sub r6, r6, r2
    cmp r3, r6
    jl pair
    shli r2, r2, 1
    cmpi r2, {size // 2 + 1}
    jl stage
    addi r11, r11, 1
    cmpi r11, {repeats}
    jl rep
""" + emit_and_exit()
