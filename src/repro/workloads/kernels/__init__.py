"""Parameterized workload kernel generators.

Each module emits R32 assembly source for one family of kernels; the
suite registry (:mod:`repro.workloads.suite`) maps SPEC2000 names onto
them with per-scale parameters.
"""

from repro.workloads.kernels import (compress, dots, graph, linalg,
                                     particles, route, search, stencil,
                                     text, vm)

__all__ = ["compress", "dots", "graph", "linalg", "particles", "route",
           "search", "stencil", "text", "vm"]
