"""Text-processing integer kernels (197.parser / 253.perlbmk
stand-ins): a character-class tokenizer and a backtracking substring
matcher.

Both are intra-procedural and call-free — the designated workloads for
the whole-CFG static techniques (CFCSS, ECCA), which cannot handle
dynamic branch targets.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, header


def _synth_text(length: int) -> str:
    """Deterministic text with words, digits, and punctuation."""
    words = ["soft", "error", "branch", "check", "signature", "region",
             "edge", "block", "42", "2006", "cfc;", "dbt,", "x86."]
    out = []
    total = 0
    index = 0
    while total < length:
        word = words[index % len(words)]
        out.append(word)
        total += len(word) + 1
        index += 3
    return " ".join(out)[:length]


def tokenizer(text_length: int = 1024, passes: int = 1) -> str:
    """Classify characters and count token transitions."""
    text = _synth_text(text_length)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return header() + f"""
.data
text:   .asciz "{escaped}"

.text
main:
    movi r1, 0              ; checksum
    movi r9, 0              ; pass
pass_loop:
    const r2, text
    movi r3, 0              ; index
    movi r4, 0              ; previous class
scan:
    lea3 r5, r2, r3
    ldb r6, r5, 0
    cmpi r6, 0
    jz end_scan
    ; classify: 1=alpha, 2=digit, 3=space, 4=other
    cmpi r6, 97             ; 'a'
    jl not_lower
    cmpi r6, 123
    jge not_lower
    movi r7, 1
    jmp classified
not_lower:
    cmpi r6, 48             ; '0'
    jl not_digit
    cmpi r6, 58
    jge not_digit
    movi r7, 2
    jmp classified
not_digit:
    cmpi r6, 32             ; ' '
    jnz other_char
    movi r7, 3
    jmp classified
other_char:
    movi r7, 4
classified:
    ; count class transitions, weight by class
    cmp r7, r4
    jz same_class
    add r1, r1, r7
    muli r1, r1, 11
same_class:
    mov r4, r7
    addi r3, r3, 1
    jmp scan
end_scan:
    addi r9, r9, 1
    cmpi r9, {passes}
    jl pass_loop
""" + emit_and_exit()


def matcher(text_length: int = 512, passes: int = 1) -> str:
    """Naive substring search with backtracking for several needles."""
    text = _synth_text(text_length)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return header() + f"""
.data
text:    .asciz "{escaped}"
needles: .asciz "error"
n2:      .asciz "signature"
n3:      .asciz "xyzzy"
.align 4
nptrs:   .word needles, n2, n3

.text
main:
    movi r1, 0              ; match count / checksum
    movi r12, 0             ; pass
pass_loop:
    movi r11, 0             ; needle index
needle_loop:
    const r2, nptrs
    mov r3, r11
    shli r3, r3, 2
    lea3 r3, r2, r3
    ld r4, r3, 0            ; needle pointer
    const r5, text
    movi r6, 0              ; text index
outer:
    lea3 r7, r5, r6
    ldb r8, r7, 0
    cmpi r8, 0
    jz next_needle
    ; try match at r6
    movi r9, 0              ; needle offset
try:
    lea3 r10, r4, r9
    ldb r0, r10, 0
    cmpi r0, 0
    jz matched
    lea3 r7, r5, r6
    lea3 r7, r7, r9
    ldb r8, r7, 0
    cmp r8, r0
    jnz mismatch
    addi r9, r9, 1
    jmp try
matched:
    addi r1, r1, 1
    muli r1, r1, 3
mismatch:
    addi r6, r6, 1
    jmp outer
next_needle:
    addi r11, r11, 1
    cmpi r11, 3
    jl needle_loop
    addi r12, r12, 1
    cmpi r12, {passes}
    jl pass_loop
""" + emit_and_exit()
