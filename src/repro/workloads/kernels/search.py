"""Search-flavoured integer kernels (186.crafty / 252.eon / 254.gap
stand-ins): recursive negamax over a synthetic game, fixed-point ray
stepping, and modular-arithmetic group operations.
"""

from __future__ import annotations

from repro.workloads.common import emit_and_exit, header


def negamax(depth: int = 7, branching: int = 3) -> str:
    """Recursive negamax with call/ret recursion and branchy leaf
    evaluation — heavy RET-policy check traffic."""
    return header() + f"""
.text
main:
    movi r1, 0              ; position seed
    movi r2, {depth}        ; depth
    call search
    mov r1, r0
""" + emit_and_exit() + f"""

; r0 = negamax(position r1, depth r2); clobbers r3..r8
search:
    cmpi r2, 0
    jnz descend
    ; leaf evaluation: mix the position
    mov r0, r1
    const r3, 2654435
    mul r0, r0, r3
    mov r3, r0
    shri r3, r3, 13
    xor r0, r0, r3
    andi r0, r0, 1023
    ret
descend:
    push r1
    push r2
    movi r7, 0              ; best = 0 (scores are 0..1023)
    movi r8, 0              ; move index
moves:
    ; child position = parent * 31 + move*7 + depth
    ld r1, sp, 4            ; parent position
    muli r1, r1, 31
    mov r3, r8
    muli r3, r3, 7
    add r1, r1, r3
    ld r2, sp, 0            ; depth
    add r1, r1, r2
    subi r2, r2, 1
    push r7
    push r8
    call search
    pop r8
    pop r7
    ; negamax fold: score = 1024 - child
    const r3, 1024
    sub r3, r3, r0
    cmp r3, r7
    jle skip_best
    mov r7, r3
skip_best:
    addi r8, r8, 1
    cmpi r8, {branching}
    jl moves
    mov r0, r7
    pop r2
    pop r1
    ret
"""


def fixed_ray(rays: int = 60, max_steps: int = 40) -> str:
    """Fixed-point (16.16) ray stepping against sphere-ish bounds."""
    return header() + f"""
.text
main:
    movi r1, 0              ; checksum
    movi r9, 0              ; ray index
ray_loop:
    ; direction from ray index (fixed-point)
    mov r2, r9
    muli r2, r2, 1103
    andi r2, r2, 0xFFF
    addi r2, r2, 16         ; dx
    mov r3, r9
    muli r3, r3, 2017
    andi r3, r3, 0xFFF
    addi r3, r3, 16         ; dy
    movi r4, 0              ; x
    movi r5, 0              ; y
    movi r6, 0              ; step
step:
    add r4, r4, r2
    add r5, r5, r3
    ; hit test: (x>>8)^2 + (y>>8)^2 >= R^2 ?
    mov r7, r4
    shri r7, r7, 8
    mul r7, r7, r7
    mov r8, r5
    shri r8, r8, 8
    mul r8, r8, r8
    add r7, r7, r8
    const r8, 90000
    cmp r7, r8
    jae hit
    addi r6, r6, 1
    cmpi r6, {max_steps}
    jl step
hit:
    add r1, r1, r6
    muli r1, r1, 19
    add r1, r1, r7
    addi r9, r9, 1
    cmpi r9, {rays}
    jl ray_loop
""" + emit_and_exit()


def modmath(iterations: int = 300) -> str:
    """Modular exponentiation chains (group-theory flavour).

    Division-heavy (mod), intra-procedural, call-free — also suitable
    for the whole-CFG static techniques.
    """
    return header() + f"""
.text
main:
    movi r1, 0              ; checksum
    const r6, 65521         ; prime modulus
    movi r9, 0              ; iteration
iter:
    ; base = (iteration * 131) % p, exponent = (iteration % 13) + 2
    mov r2, r9
    muli r2, r2, 131
    mod r2, r2, r6          ; base
    mov r3, r9
    movi r4, 13
    mod r3, r3, r4
    addi r3, r3, 2          ; exponent
    movi r0, 1              ; result
powloop:
    cmpi r3, 0
    jz powdone
    mov r5, r3
    andi r5, r5, 1
    cmpi r5, 0
    jz square
    mul r0, r0, r2
    mod r0, r0, r6
square:
    mul r2, r2, r2
    mod r2, r2, r6
    shri r3, r3, 1
    jmp powloop
powdone:
    add r1, r1, r0
    muli r1, r1, 3
    addi r9, r9, 1
    cmpi r9, {iterations}
    jl iter
""" + emit_and_exit()
