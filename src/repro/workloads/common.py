"""Shared assembly-generation helpers for the workload kernels.

All kernels follow the same contract:

* deterministic: no input, fixed seeds, same output every run — the
  fault campaigns diff the output word stream against a golden run to
  detect silent data corruption,
* observable: results funnel into a running checksum emitted with the
  ``EMIT_WORD`` syscall before a clean ``exit 0``,
* flag-clean: every conditional branch is immediately preceded (within
  its block) by the compare that feeds it, so flags are never live
  across block boundaries — the discipline that lets the flag-clobbering
  static techniques (CFCSS/ECCA) instrument block entries safely.

Register conventions inside kernels: r0..r13 free, r14/r15 reserved
(fp/sp).  Kernels never touch r16+ (host-only registers).
"""

from __future__ import annotations

LCG_MUL = 1664525
LCG_ADD = 1013904223


def lcg_step(reg: str, tmp: str = "r13") -> str:
    """Advance an in-guest linear congruential generator in ``reg``."""
    return f"""
    const {tmp}, {LCG_MUL}
    mul {reg}, {reg}, {tmp}
    const {tmp}, {LCG_ADD}
    add {reg}, {reg}, {tmp}
"""


def fill_words(buf: str, count_reg: str, seed: int, value_reg: str = "r1",
               index_reg: str = "r2", addr_reg: str = "r3",
               label: str = "fill") -> str:
    """Fill ``count_reg`` words at ``buf`` with LCG values."""
    return f"""
    const {value_reg}, {seed}
    movi {index_reg}, 0
    const {addr_reg}, {buf}
{label}:
{lcg_step(value_reg)}
    st {value_reg}, {addr_reg}, 0
    lea {addr_reg}, {addr_reg}, 4
    addi {index_reg}, {index_reg}, 1
    cmp {index_reg}, {count_reg}
    jl {label}
"""


def emit_and_exit(checksum_reg: str = "r1") -> str:
    """Emit the checksum and terminate cleanly."""
    lines = ""
    if checksum_reg != "r1":
        lines += f"    mov r1, {checksum_reg}\n"
    return lines + """    syscall 4
    movi r1, 0
    syscall 0
"""


def header(entry: str = "main") -> str:
    return f".entry {entry}\n"
