"""The benchmark suite: 26 SPEC CPU2000-named synthetic workloads.

Each SPEC2000 program is stood in for by a parameterized kernel whose
*structural profile* matches what the paper's analysis depends on:

* SPEC-Int analogues: small basic blocks, dense data-dependent
  branching, integer/byte memory traffic,
* SPEC-Fp analogues: large (often unrolled) basic blocks dominated by
  expensive fadd/fmul/fdiv-class instructions.

Three scales are provided: ``test`` (unit tests / fault campaigns),
``small`` (quick sweeps), ``ref`` (the benchmark harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.kernels import (compress, dots, graph, linalg, mt,
                                     particles, route, search, stencil,
                                     text, vm)

SCALES = ("test", "small", "ref")


@dataclass(frozen=True)
class BenchmarkSpec:
    """One suite member."""

    name: str                       #: SPEC2000-style name ("164.gzip")
    suite: str                      #: "int" or "fp"
    generator: Callable[..., str]
    params: dict[str, dict]         #: scale -> generator kwargs
    uses_indirect: bool = False     #: jmpr/callr (DBT-only)
    uses_calls: bool = False        #: call/ret present

    @property
    def static_rewritable(self) -> bool:
        """Usable with the static rewriter (EdgCF/ECF/RCF)."""
        return not self.uses_indirect

    @property
    def whole_cfg_ok(self) -> bool:
        """Usable with CFCSS/ECCA (intra-procedural, no dynamic exits)."""
        return not self.uses_indirect and not self.uses_calls

    def source(self, scale: str = "small") -> str:
        if scale not in self.params:
            raise KeyError(f"{self.name} has no scale {scale!r}")
        return self.generator(**self.params[scale])

    def assemble(self, scale: str = "small") -> Program:
        return assemble(self.source(scale), name=f"{self.name}@{scale}")


def _spec(name, suite, generator, test, small, ref, uses_indirect=False,
          uses_calls=False) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name, suite=suite, generator=generator,
        params={"test": test, "small": small, "ref": ref},
        uses_indirect=uses_indirect, uses_calls=uses_calls)


SUITE: tuple[BenchmarkSpec, ...] = (
    # ---- SPEC-Fp 2000 analogues ----
    _spec("168.wupwise", "fp", linalg.matmul,
          dict(n=8, repeats=1), dict(n=16, repeats=1),
          dict(n=20, repeats=2)),
    _spec("171.swim", "fp", stencil.stencil2d,
          dict(width=10, height=8, sweeps=1),
          dict(width=20, height=16, sweeps=2),
          dict(width=26, height=24, sweeps=4)),
    _spec("172.mgrid", "fp", stencil.stencil1d,
          dict(points=64, sweeps=2, unroll=8),
          dict(points=256, sweeps=5, unroll=8),
          dict(points=512, sweeps=9, unroll=8)),
    _spec("173.applu", "fp", stencil.trisolve,
          dict(size=16, systems=2), dict(size=40, systems=6),
          dict(size=56, systems=10)),
    _spec("177.mesa", "fp", linalg.transform4,
          dict(vertices=40), dict(vertices=250), dict(vertices=700)),
    _spec("178.galgel", "fp", linalg.gauss_step,
          dict(n=12, repeats=1), dict(n=24, repeats=3),
          dict(n=32, repeats=6)),
    _spec("179.art", "fp", dots.neural_layer,
          dict(inputs=32, neurons=8, repeats=1),
          dict(inputs=64, neurons=20, repeats=2),
          dict(inputs=64, neurons=24, repeats=6)),
    _spec("183.equake", "fp", particles.spmv,
          dict(rows=24, nnz_per_row=4, repeats=2),
          dict(rows=48, nnz_per_row=6, repeats=5),
          dict(rows=64, nnz_per_row=6, repeats=10)),
    _spec("187.facerec", "fp", dots.correlate,
          dict(signal=60, window=9, repeats=1),
          dict(signal=160, window=12, repeats=2),
          dict(signal=240, window=12, repeats=5)),
    _spec("188.ammp", "fp", particles.nbody_forces,
          dict(particles=12, steps=2), dict(particles=24, steps=4),
          dict(particles=32, steps=6)),
    _spec("189.lucas", "fp", particles.butterfly,
          dict(size_log2=6, repeats=1), dict(size_log2=8, repeats=2),
          dict(size_log2=9, repeats=4)),
    _spec("191.fma3d", "fp", particles.particle_track,
          dict(particles=20, turns=6), dict(particles=40, turns=20),
          dict(particles=64, turns=40)),
    _spec("200.sixtrack", "fp", particles.particle_track,
          dict(particles=12, turns=10), dict(particles=32, turns=30),
          dict(particles=48, turns=60)),
    _spec("301.apsi", "fp", stencil.stencil2d,
          dict(width=8, height=10, sweeps=1),
          dict(width=16, height=20, sweeps=2),
          dict(width=22, height=28, sweeps=4)),

    # ---- SPEC-Int 2000 analogues ----
    _spec("164.gzip", "int", compress.rle_compress,
          dict(buffer_bytes=256, passes=1),
          dict(buffer_bytes=1024, passes=2),
          dict(buffer_bytes=2048, passes=4)),
    _spec("175.vpr", "int", route.grid_route,
          dict(width=8, height=8, routes=8),
          dict(width=16, height=16, routes=30),
          dict(width=20, height=20, routes=70)),
    _spec("176.gcc", "int", vm.stack_vm,
          dict(loop_count=20, jump_table=True),
          dict(loop_count=150, jump_table=True),
          dict(loop_count=450, jump_table=True),
          uses_indirect=True),
    _spec("181.mcf", "int", graph.edge_relax,
          dict(nodes=24, rounds=4), dict(nodes=64, rounds=10),
          dict(nodes=96, rounds=18)),
    _spec("186.crafty", "int", search.negamax,
          dict(depth=4, branching=3), dict(depth=6, branching=3),
          dict(depth=7, branching=3), uses_calls=True),
    _spec("197.parser", "int", text.tokenizer,
          dict(text_length=200, passes=1),
          dict(text_length=900, passes=2),
          dict(text_length=1400, passes=4)),
    _spec("252.eon", "int", search.fixed_ray,
          dict(rays=12, max_steps=20), dict(rays=45, max_steps=40),
          dict(rays=90, max_steps=50)),
    _spec("253.perlbmk", "int", text.matcher,
          dict(text_length=100, passes=1),
          dict(text_length=380, passes=1),
          dict(text_length=520, passes=2)),
    _spec("254.gap", "int", search.modmath,
          dict(iterations=40), dict(iterations=220),
          dict(iterations=520)),
    _spec("255.vortex", "int", graph.hash_table,
          dict(operations=70, buckets=64),
          dict(operations=380, buckets=256),
          dict(operations=800, buckets=256), uses_calls=True),
    _spec("256.bzip2", "int", compress.shell_sort,
          dict(elements=48, passes=1), dict(elements=160, passes=2),
          dict(elements=256, passes=3), uses_calls=True),
    _spec("300.twolf", "int", route.anneal,
          dict(cells=32, moves=120), dict(cells=128, moves=600),
          dict(cells=160, moves=1400)),
)

#: Multithreaded extension (guest-thread syscalls 16..22; run under
#: repro.threads.ThreadedMachine).  Deliberately NOT part of SUITE —
#: the 26-member single-threaded suite mirrors the paper's tables and
#: every generic harness iterates it; MT benchmarks are opted into by
#: name or via MT_SUITE.
MT_SUITE: tuple[BenchmarkSpec, ...] = (
    _spec("mt.counters4", "mt", mt.counters,
          dict(threads=4, iters=40, spin=4),
          dict(threads=4, iters=200, spin=16),
          dict(threads=4, iters=800, spin=32)),
    _spec("mt.ledger", "mt", mt.ledger,
          dict(threads=4, deposits=10), dict(threads=4, deposits=40),
          dict(threads=8, deposits=120)),
    _spec("mt.relay", "mt", mt.relay,
          dict(stages=3, rounds=8), dict(stages=4, rounds=24),
          dict(stages=6, rounds=64)),
)

BY_NAME: dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in SUITE + MT_SUITE}

INT_SUITE: tuple[BenchmarkSpec, ...] = tuple(
    spec for spec in SUITE if spec.suite == "int")
FP_SUITE: tuple[BenchmarkSpec, ...] = tuple(
    spec for spec in SUITE if spec.suite == "fp")

_program_cache: dict[tuple[str, str], Program] = {}


def load(name: str, scale: str = "small") -> Program:
    """Assemble (with caching) a suite benchmark by name."""
    key = (name, scale)
    if key not in _program_cache:
        _program_cache[key] = BY_NAME[name].assemble(scale)
    return _program_cache[key]


def suite_names(suite: str | None = None) -> list[str]:
    """Names in presentation order (fp first, like the paper's
    figures)."""
    if suite is None:
        return [spec.name for spec in SUITE]
    if suite == "mt":
        return [spec.name for spec in MT_SUITE]
    return [spec.name for spec in SUITE if spec.suite == suite]
