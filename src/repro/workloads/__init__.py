"""Workloads: the SPEC2000-shaped synthetic benchmark suite and a
random structured-program generator for property tests."""

from repro.workloads.suite import (BY_NAME, FP_SUITE, INT_SUITE, SCALES,
                                   SUITE, BenchmarkSpec, load,
                                   suite_names)
from repro.workloads.synthetic import (SyntheticSpec, generate_program,
                                       generate_program_source)

__all__ = [
    "BY_NAME", "FP_SUITE", "INT_SUITE", "SCALES", "SUITE",
    "BenchmarkSpec", "load", "suite_names",
    "SyntheticSpec", "generate_program", "generate_program_source",
]
