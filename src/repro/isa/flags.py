"""Condition flags for the R32 ISA.

R32 keeps an x86-style ``FLAGS`` register.  Arithmetic/logic instructions
set the four classic condition bits; conditional branches and conditional
moves read subsets of them.  The paper's single-bit-fault error model
("1 bit change ... in the flags that determine the conditional branches
direction", Section 2) is defined directly over these bits: for each
dynamic conditional branch we enumerate a flip of every flag bit its
condition *reads* and ask whether the branch direction changes.
"""

from __future__ import annotations

import enum


class Flag(enum.IntEnum):
    """Bit positions inside the FLAGS register."""

    ZF = 0  #: zero
    SF = 1  #: sign
    CF = 2  #: carry / unsigned borrow
    OF = 3  #: signed overflow


FLAG_MASKS = {flag: 1 << flag for flag in Flag}

ZF = 1 << Flag.ZF
SF = 1 << Flag.SF
CF = 1 << Flag.CF
OF = 1 << Flag.OF

ALL_FLAGS_MASK = ZF | SF | CF | OF
NUM_FLAG_BITS = 4


class Cond(enum.Enum):
    """Branch/cmov condition codes, with x86-equivalent semantics."""

    Z = "z"      #: equal / zero                (ZF)
    NZ = "nz"    #: not equal / not zero        (ZF)
    L = "l"      #: signed less                 (SF, OF)
    GE = "ge"    #: signed greater-or-equal     (SF, OF)
    LE = "le"    #: signed less-or-equal        (ZF, SF, OF)
    G = "g"      #: signed greater              (ZF, SF, OF)
    B = "b"      #: unsigned below              (CF)
    AE = "ae"    #: unsigned above-or-equal     (CF)
    BE = "be"    #: unsigned below-or-equal     (CF, ZF)
    A = "a"      #: unsigned above              (CF, ZF)
    S = "s"      #: negative                    (SF)
    NS = "ns"    #: non-negative                (SF)
    O = "o"      #: overflow                    (OF)
    NO = "no"    #: no overflow                 (OF)


#: Which FLAGS bits each condition reads.  This is the fault universe for
#: flag-bit soft errors at a conditional branch (paper Section 2).
COND_READS: dict[Cond, int] = {
    Cond.Z: ZF,
    Cond.NZ: ZF,
    Cond.L: SF | OF,
    Cond.GE: SF | OF,
    Cond.LE: ZF | SF | OF,
    Cond.G: ZF | SF | OF,
    Cond.B: CF,
    Cond.AE: CF,
    Cond.BE: CF | ZF,
    Cond.A: CF | ZF,
    Cond.S: SF,
    Cond.NS: SF,
    Cond.O: OF,
    Cond.NO: OF,
}

#: Inverse condition (used by the Jcc-style signature update, which emits
#: an inverted conditional jump around the "taken" signature fix-up).
COND_INVERSE: dict[Cond, Cond] = {
    Cond.Z: Cond.NZ, Cond.NZ: Cond.Z,
    Cond.L: Cond.GE, Cond.GE: Cond.L,
    Cond.LE: Cond.G, Cond.G: Cond.LE,
    Cond.B: Cond.AE, Cond.AE: Cond.B,
    Cond.BE: Cond.A, Cond.A: Cond.BE,
    Cond.S: Cond.NS, Cond.NS: Cond.S,
    Cond.O: Cond.NO, Cond.NO: Cond.O,
}


def evaluate_cond(cond: Cond, flags: int) -> bool:
    """Evaluate condition ``cond`` against a FLAGS value."""
    zf = bool(flags & ZF)
    sf = bool(flags & SF)
    cf = bool(flags & CF)
    of = bool(flags & OF)
    if cond is Cond.Z:
        return zf
    if cond is Cond.NZ:
        return not zf
    if cond is Cond.L:
        return sf != of
    if cond is Cond.GE:
        return sf == of
    if cond is Cond.LE:
        return zf or (sf != of)
    if cond is Cond.G:
        return (not zf) and (sf == of)
    if cond is Cond.B:
        return cf
    if cond is Cond.AE:
        return not cf
    if cond is Cond.BE:
        return cf or zf
    if cond is Cond.A:
        return (not cf) and (not zf)
    if cond is Cond.S:
        return sf
    if cond is Cond.NS:
        return not sf
    if cond is Cond.O:
        return of
    if cond is Cond.NO:
        return not of
    raise ValueError(f"unknown condition: {cond}")


def flag_fault_flips_direction(cond: Cond, flags: int, flag_bit: int) -> bool:
    """Would flipping FLAGS bit ``flag_bit`` change ``cond``'s outcome?

    This is the core question of the paper's flag-fault model: a flag-bit
    soft error is a category-A ("mistaken branch") error exactly when it
    changes the evaluated branch direction, and harmless otherwise.
    """
    mask = 1 << flag_bit
    return evaluate_cond(cond, flags) != evaluate_cond(cond, flags ^ mask)


def flags_from_sub(a: int, b: int) -> int:
    """Compute FLAGS for ``a - b`` over 32-bit operands (x86 ``cmp``)."""
    a &= 0xFFFFFFFF
    b &= 0xFFFFFFFF
    result = (a - b) & 0xFFFFFFFF
    flags = 0
    if result == 0:
        flags |= ZF
    if result & 0x80000000:
        flags |= SF
    if a < b:
        flags |= CF
    # Signed overflow: operands have different signs and the result's sign
    # differs from the minuend's.
    if ((a ^ b) & (a ^ result)) & 0x80000000:
        flags |= OF
    return flags


def flags_from_add(a: int, b: int) -> int:
    """Compute FLAGS for ``a + b`` over 32-bit operands."""
    a &= 0xFFFFFFFF
    b &= 0xFFFFFFFF
    total = a + b
    result = total & 0xFFFFFFFF
    flags = 0
    if result == 0:
        flags |= ZF
    if result & 0x80000000:
        flags |= SF
    if total > 0xFFFFFFFF:
        flags |= CF
    if (~(a ^ b) & (a ^ result)) & 0x80000000:
        flags |= OF
    return flags


def flags_from_logic(result: int) -> int:
    """Compute FLAGS for a logic result (CF and OF cleared, as on x86)."""
    result &= 0xFFFFFFFF
    flags = 0
    if result == 0:
        flags |= ZF
    if result & 0x80000000:
        flags |= SF
    return flags
