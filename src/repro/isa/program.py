"""Assembled program images.

A :class:`Program` is the loadable unit of the toolchain: text and data
sections with their base addresses, a symbol table, and an entry point.
Both the native machine and the dynamic binary translator consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import decode
from repro.isa.instruction import WORD_SIZE, Instruction

#: Default memory layout.  Small and flat on purpose: the whole guest
#: address space fits comfortably in a Python bytearray, and 16-bit
#: branch-offset faults can reach far outside the text section — which is
#: what populates category F ("jump to a non-code memory region").
TEXT_BASE = 0x1000
DATA_BASE = 0x20000
STACK_TOP = 0x60000
MEMORY_SIZE = 0x200000  # includes the DBT code cache region


@dataclass
class Program:
    """An assembled, loadable R32 program."""

    text: bytes
    data: bytes = b""
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    entry: int = TEXT_BASE
    symbols: dict[str, int] = field(default_factory=dict)
    source_name: str = "<program>"

    @property
    def text_end(self) -> int:
        """First address past the text section."""
        return self.text_base + len(self.text)

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data)

    def contains_code(self, addr: int) -> bool:
        """True when ``addr`` lies inside the text section."""
        return self.text_base <= addr < self.text_end

    def instruction_count(self) -> int:
        return len(self.text) // WORD_SIZE

    def instruction_addresses(self) -> range:
        """All instruction addresses in the text section."""
        return range(self.text_base, self.text_end, WORD_SIZE)

    def word_at(self, addr: int) -> int:
        """Raw encoded word at text address ``addr``."""
        if not self.contains_code(addr):
            raise ValueError(f"address {addr:#x} outside text section")
        offset = addr - self.text_base
        return int.from_bytes(self.text[offset:offset + WORD_SIZE], "little")

    def instruction_at(self, addr: int) -> Instruction:
        """Decoded instruction at text address ``addr``."""
        return decode(self.word_at(addr))

    def instructions(self) -> list[tuple[int, Instruction]]:
        """All (address, instruction) pairs in the text section."""
        return [(addr, self.instruction_at(addr))
                for addr in self.instruction_addresses()]

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(
                f"no symbol {name!r} in {self.source_name}") from None
