"""Opcode table and per-instruction metadata for the R32 ISA.

Every opcode carries the metadata the rest of the system needs:

* ``fmt`` — the encoding format (see :mod:`repro.isa.encoding`),
* ``cycles`` — the deterministic cost charged by the machine simulator
  (this is what makes the performance figures reproducible: the paper's
  slowdown numbers come from instruction count x instruction cost),
* ``sets_flags`` / ``cond`` — flag behaviour.  The distinction between
  flag-setting ops (``xor``, ``add``...) and flagless ops (``lea``,
  ``mov``, ``cmov``, ``jrz``) reproduces the EFLAGS problem of the
  paper's Section 5.1: instrumentation code must only use flagless
  instructions or it corrupts the guest's live condition flags,
* ``kind`` — the coarse classification used by the CFG builder, the
  translator and the fault models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.isa.flags import Cond


class Fmt(enum.Enum):
    """Instruction encoding formats."""

    R3 = "r3"      #: rd, rs, rt
    R2 = "r2"      #: rd, rs
    R1 = "r1"      #: rd (single register operand)
    RI = "ri"      #: rd, rs, imm14 (signed)
    RI16 = "ri16"  #: rd, imm16
    B = "b"        #: branch: offset16 (words), optional rd for jrz/jrnz
    SYS = "sys"    #: imm16 service/trap number
    N = "n"        #: no operands


class Kind(enum.Enum):
    """Coarse instruction classification."""

    ALU = "alu"
    MOVE = "move"
    MEM = "mem"
    STACK = "stack"
    BRANCH_COND = "branch_cond"       #: direct conditional branch
    BRANCH_UNCOND = "branch_uncond"   #: direct unconditional branch
    BRANCH_REG = "branch_reg"         #: flagless register-zero branch
    CALL = "call"                     #: direct call
    BRANCH_IND = "branch_ind"         #: indirect jump / indirect call
    RET = "ret"                       #: return (implicit dynamic branch)
    SYS = "sys"
    NOP = "nop"
    HALT = "halt"
    TRAP = "trap"                     #: DBT exit stub (host-only)


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    mnemonic: str
    code: int
    fmt: Fmt
    kind: Kind
    cycles: int
    sets_flags: bool = False
    cond: Cond | None = None  #: condition read by Jcc / CMOVcc

    @cached_property
    def is_branch(self) -> bool:
        """True for anything that can change control flow.

        TRAP counts: in translated code the DBT's exit traps stand in
        for the guest branch they replace, and the fault injector's
        pre-branch hook must fire on them too.
        """
        return self.kind in (
            Kind.BRANCH_COND,
            Kind.BRANCH_UNCOND,
            Kind.BRANCH_REG,
            Kind.CALL,
            Kind.BRANCH_IND,
            Kind.RET,
            Kind.TRAP,
        )

    @cached_property
    def is_direct_branch(self) -> bool:
        """True when the target is an encoded offset (bit-flippable)."""
        return self.kind in (Kind.BRANCH_COND, Kind.BRANCH_UNCOND,
                             Kind.BRANCH_REG, Kind.CALL)

    @cached_property
    def is_block_terminator(self) -> bool:
        """True when a basic block must end at this instruction."""
        return self.is_branch or self.kind in (Kind.HALT, Kind.TRAP)


class Op(enum.IntEnum):
    """R32 opcodes.  Values are the 8-bit encodings."""

    # ALU, register-register, flag-setting
    ADD = 0x01
    SUB = 0x02
    AND = 0x03
    OR = 0x04
    XOR = 0x05
    SHL = 0x06
    SHR = 0x07
    SAR = 0x08
    MUL = 0x09
    DIV = 0x0A
    MOD = 0x0B
    CMP = 0x0C
    TEST = 0x0D
    NEG = 0x0E
    NOT = 0x0F

    # ALU, register-immediate, flag-setting
    ADDI = 0x10
    SUBI = 0x11
    ANDI = 0x12
    ORI = 0x13
    XORI = 0x14
    CMPI = 0x15
    SHLI = 0x16
    SHRI = 0x17
    MULI = 0x18

    # Flagless moves / address arithmetic (the "lea" family, Section 5.1)
    MOV = 0x20
    MOVI = 0x21
    MOVHI = 0x22
    MOVLO = 0x23
    LEA = 0x24    #: rd = rs + imm14, no flags
    LEA3 = 0x25   #: rd = rs + rt, no flags
    LSUB = 0x26   #: rd = rs - rt, no flags

    # FP-class arithmetic: same integer semantics, higher cost, no flags.
    # These model the "time-consuming instructions (like floating point
    # instructions)" that make the SPEC-Fp overheads smaller (Section 6).
    FADD = 0x28
    FSUB = 0x29
    FMUL = 0x2A
    FDIV = 0x2B

    # Memory
    LD = 0x30
    ST = 0x31
    LDB = 0x32
    STB = 0x33
    PUSH = 0x34
    POP = 0x35

    # Direct control flow
    JMP = 0x40
    JZ = 0x41
    JNZ = 0x42
    JL = 0x43
    JGE = 0x44
    JLE = 0x45
    JG = 0x46
    JB = 0x47
    JAE = 0x48
    JBE = 0x49
    JA = 0x4A
    JS = 0x4B
    JNS = 0x4C
    JO = 0x4D
    JNO = 0x4E
    CALL = 0x4F
    JRZ = 0x50   #: jump if rd == 0, flagless (the paper's jcxz analogue)
    JRNZ = 0x51  #: jump if rd != 0, flagless

    # Indirect control flow
    JMPR = 0x58
    CALLR = 0x59
    RET = 0x5A

    # Conditional moves (flagless destination update, Figure 8/14)
    CMOVZ = 0x60
    CMOVNZ = 0x61
    CMOVL = 0x62
    CMOVGE = 0x63
    CMOVLE = 0x64
    CMOVG = 0x65
    CMOVB = 0x66
    CMOVAE = 0x67
    CMOVBE = 0x68
    CMOVA = 0x69
    CMOVS = 0x6A
    CMOVNS = 0x6B
    CMOVO = 0x6C
    CMOVNO = 0x6D

    # System
    SYSCALL = 0x70
    HALT = 0x71
    NOP = 0x72
    TRAP = 0x73   #: host-only: exit translated code back to the DBT


# Cycle-cost model.  Calibrated so that technique orderings and rough
# magnitudes match the paper (see DESIGN.md "Known deviations").
_ALU_CYCLES = 1
_MUL_CYCLES = 3
_DIV_CYCLES = 20
_MEM_CYCLES = 2
_CMOV_CYCLES = 2
_FADD_CYCLES = 4
_FMUL_CYCLES = 6
_FDIV_CYCLES = 24
_CALL_CYCLES = 2
_SYS_CYCLES = 10


def _build_table() -> dict[Op, OpInfo]:
    def op(mn, code, fmt, kind, cycles, sets_flags=False, cond=None):
        return OpInfo(mn, int(code), fmt, kind, cycles, sets_flags, cond)

    table: dict[Op, OpInfo] = {}

    def add(info: OpInfo) -> None:
        table[Op(info.code)] = info

    # ALU register-register
    for name in ("ADD", "SUB", "AND", "OR", "XOR", "SHL", "SHR", "SAR"):
        add(op(name.lower(), Op[name], Fmt.R3, Kind.ALU, _ALU_CYCLES,
               sets_flags=True))
    add(op("mul", Op.MUL, Fmt.R3, Kind.ALU, _MUL_CYCLES, sets_flags=True))
    add(op("div", Op.DIV, Fmt.R3, Kind.ALU, _DIV_CYCLES, sets_flags=True))
    add(op("mod", Op.MOD, Fmt.R3, Kind.ALU, _DIV_CYCLES, sets_flags=True))
    add(op("cmp", Op.CMP, Fmt.R3, Kind.ALU, _ALU_CYCLES, sets_flags=True))
    add(op("test", Op.TEST, Fmt.R3, Kind.ALU, _ALU_CYCLES, sets_flags=True))
    add(op("neg", Op.NEG, Fmt.R2, Kind.ALU, _ALU_CYCLES, sets_flags=True))
    add(op("not", Op.NOT, Fmt.R2, Kind.ALU, _ALU_CYCLES, sets_flags=True))

    # ALU register-immediate
    for name in ("ADDI", "SUBI", "ANDI", "ORI", "XORI", "SHLI", "SHRI"):
        add(op(name.lower(), Op[name], Fmt.RI, Kind.ALU, _ALU_CYCLES,
               sets_flags=True))
    add(op("cmpi", Op.CMPI, Fmt.RI, Kind.ALU, _ALU_CYCLES, sets_flags=True))
    add(op("muli", Op.MULI, Fmt.RI, Kind.ALU, _MUL_CYCLES, sets_flags=True))

    # Flagless moves / lea family
    add(op("mov", Op.MOV, Fmt.R2, Kind.MOVE, _ALU_CYCLES))
    add(op("movi", Op.MOVI, Fmt.RI16, Kind.MOVE, _ALU_CYCLES))
    add(op("movhi", Op.MOVHI, Fmt.RI16, Kind.MOVE, _ALU_CYCLES))
    add(op("movlo", Op.MOVLO, Fmt.RI16, Kind.MOVE, _ALU_CYCLES))
    add(op("lea", Op.LEA, Fmt.RI, Kind.MOVE, _ALU_CYCLES))
    add(op("lea3", Op.LEA3, Fmt.R3, Kind.MOVE, _ALU_CYCLES))
    add(op("lsub", Op.LSUB, Fmt.R3, Kind.MOVE, _ALU_CYCLES))

    # FP-class
    add(op("fadd", Op.FADD, Fmt.R3, Kind.ALU, _FADD_CYCLES))
    add(op("fsub", Op.FSUB, Fmt.R3, Kind.ALU, _FADD_CYCLES))
    add(op("fmul", Op.FMUL, Fmt.R3, Kind.ALU, _FMUL_CYCLES))
    add(op("fdiv", Op.FDIV, Fmt.R3, Kind.ALU, _FDIV_CYCLES))

    # Memory
    add(op("ld", Op.LD, Fmt.RI, Kind.MEM, _MEM_CYCLES))
    add(op("st", Op.ST, Fmt.RI, Kind.MEM, _MEM_CYCLES))
    add(op("ldb", Op.LDB, Fmt.RI, Kind.MEM, _MEM_CYCLES))
    add(op("stb", Op.STB, Fmt.RI, Kind.MEM, _MEM_CYCLES))
    add(op("push", Op.PUSH, Fmt.R1, Kind.STACK, _MEM_CYCLES))
    add(op("pop", Op.POP, Fmt.R1, Kind.STACK, _MEM_CYCLES))

    # Direct branches
    add(op("jmp", Op.JMP, Fmt.B, Kind.BRANCH_UNCOND, _ALU_CYCLES))
    cond_by_name = {c.value: c for c in Cond}
    for name in ("JZ", "JNZ", "JL", "JGE", "JLE", "JG", "JB", "JAE",
                 "JBE", "JA", "JS", "JNS", "JO", "JNO"):
        cond = cond_by_name[name[1:].lower()]
        add(op(name.lower(), Op[name], Fmt.B, Kind.BRANCH_COND, _ALU_CYCLES,
               cond=cond))
    add(op("call", Op.CALL, Fmt.B, Kind.CALL, _CALL_CYCLES))
    add(op("jrz", Op.JRZ, Fmt.B, Kind.BRANCH_REG, _ALU_CYCLES))
    add(op("jrnz", Op.JRNZ, Fmt.B, Kind.BRANCH_REG, _ALU_CYCLES))

    # Indirect branches
    add(op("jmpr", Op.JMPR, Fmt.R1, Kind.BRANCH_IND, _MEM_CYCLES))
    add(op("callr", Op.CALLR, Fmt.R1, Kind.BRANCH_IND, _CALL_CYCLES))
    add(op("ret", Op.RET, Fmt.N, Kind.RET, _CALL_CYCLES))

    # Conditional moves
    for name in ("CMOVZ", "CMOVNZ", "CMOVL", "CMOVGE", "CMOVLE", "CMOVG",
                 "CMOVB", "CMOVAE", "CMOVBE", "CMOVA", "CMOVS", "CMOVNS",
                 "CMOVO", "CMOVNO"):
        cond = cond_by_name[name[4:].lower()]
        add(op(name.lower(), Op[name], Fmt.R2, Kind.MOVE, _CMOV_CYCLES,
               cond=cond))

    # System
    add(op("syscall", Op.SYSCALL, Fmt.SYS, Kind.SYS, _SYS_CYCLES))
    add(op("halt", Op.HALT, Fmt.N, Kind.HALT, _ALU_CYCLES))
    add(op("nop", Op.NOP, Fmt.N, Kind.NOP, _ALU_CYCLES))
    add(op("trap", Op.TRAP, Fmt.SYS, Kind.TRAP, 0))

    return table


OP_TABLE: dict[Op, OpInfo] = _build_table()

MNEMONIC_TO_OP: dict[str, Op] = {
    info.mnemonic: code for code, info in OP_TABLE.items()
}

#: Opcodes whose condition comes from FLAGS (Jcc + CMOVcc).
CONDITIONAL_OPS: frozenset[Op] = frozenset(
    code for code, info in OP_TABLE.items() if info.cond is not None
)

JCC_BY_COND: dict[Cond, Op] = {
    OP_TABLE[code].cond: code
    for code in OP_TABLE
    if OP_TABLE[code].kind is Kind.BRANCH_COND
}

CMOV_BY_COND: dict[Cond, Op] = {
    OP_TABLE[code].cond: code
    for code in OP_TABLE
    if OP_TABLE[code].fmt is Fmt.R2 and OP_TABLE[code].cond is not None
}


def info(code: Op | int) -> OpInfo:
    """Look up metadata for an opcode; raises KeyError for bad codes."""
    return OP_TABLE[Op(code)]


def is_valid_opcode(code: int) -> bool:
    """True when ``code`` is a defined 8-bit opcode value."""
    try:
        Op(code)
    except ValueError:
        return False
    return True
