"""Disassembler for R32 binary code.

Produces readable listings with resolved branch targets and symbol
annotations; used by the debugging tools, the DBT trace dumps, and the
round-trip property tests.
"""

from __future__ import annotations

from repro.isa.encoding import DecodeError, decode
from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.program import Program


def disassemble_word(word: int, pc: int = 0,
                     symbols: dict[int, str] | None = None) -> str:
    """Disassemble a single encoded word at address ``pc``."""
    try:
        instr = decode(word)
    except DecodeError:
        return f".word {word:#010x}  ; <undecodable>"
    return format_instruction(instr, pc, symbols)


def format_instruction(instr: Instruction, pc: int = 0,
                       symbols: dict[int, str] | None = None) -> str:
    """Format one instruction, annotating direct-branch targets."""
    text = str(instr)
    if instr.meta.is_direct_branch:
        target = instr.branch_target(pc)
        label = symbols.get(target) if symbols else None
        where = f"{label} ({target:#x})" if label else f"{target:#x}"
        text += f"  ; -> {where}"
    return text


def disassemble_program(program: Program) -> str:
    """Full listing of a program's text section."""
    by_address = {addr: name for name, addr in program.symbols.items()
                  if program.contains_code(addr)}
    lines = []
    for addr in program.instruction_addresses():
        if addr in by_address:
            lines.append(f"{by_address[addr]}:")
        word = program.word_at(addr)
        lines.append(
            f"  {addr:#07x}: {word:08x}  "
            f"{disassemble_word(word, addr, by_address)}")
    return "\n".join(lines)


def disassemble_range(read_word, start: int, end: int,
                      symbols: dict[int, str] | None = None) -> str:
    """Disassemble ``[start, end)`` using a ``read_word(addr)`` callback.

    Useful for dumping DBT code-cache contents straight from machine
    memory.
    """
    lines = []
    for addr in range(start, end, WORD_SIZE):
        word = read_word(addr)
        lines.append(f"  {addr:#07x}: {word:08x}  "
                     f"{disassemble_word(word, addr, symbols)}")
    return "\n".join(lines)
