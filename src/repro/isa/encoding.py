"""Binary encoding and decoding of R32 instructions.

The encoding is a fixed 32-bit word:

=========  =========================
bits       field
=========  =========================
31..24     opcode (8 bits)
23..19     rd (5 bits)
18..14     rs (5 bits)
13..9      rt (5 bits, R3 only)
13..0      imm14 (signed, RI only)
15..0      imm16 (B / RI16 / SYS)
=========  =========================

The branch offset occupies the contiguous low 16 bits of the word.  This
matters for the paper's error model: a single-bit soft error "in the
address offset of the branch instruction" is literally a flip of one of
these 16 bits, and because offsets are in words, every corrupted target
is still instruction-aligned (the paper's IA-32 equivalent would mostly
decode to garbage and trap; aligned landings are the interesting,
silent-data-corruption-capable case the classification is about).
"""

from __future__ import annotations

from repro.isa.instruction import Instruction, sign_extend
from repro.isa.opcodes import Fmt, Op, info, is_valid_opcode

WORD_MASK = 0xFFFFFFFF

OPCODE_SHIFT = 24
RD_SHIFT = 19
RS_SHIFT = 14
RT_SHIFT = 9

REG_MASK = 0x1F
IMM14_MASK = 0x3FFF
IMM16_MASK = 0xFFFF

IMM14_MIN, IMM14_MAX = -(1 << 13), (1 << 13) - 1
IMM16_MIN, IMM16_MAX = -(1 << 15), (1 << 15) - 1

#: Number of bit positions in a direct branch's offset field — the
#: address-fault universe per branch execution in the error model.
BRANCH_OFFSET_BITS = 16


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def _check_reg(value: int, name: str) -> int:
    if not 0 <= value <= REG_MASK:
        raise EncodingError(f"{name} out of range: {value}")
    return value


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit word."""
    meta = info(instr.op)
    word = int(instr.op) << OPCODE_SHIFT
    fmt = meta.fmt
    if fmt is Fmt.R3:
        word |= _check_reg(instr.rd, "rd") << RD_SHIFT
        word |= _check_reg(instr.rs, "rs") << RS_SHIFT
        word |= _check_reg(instr.rt, "rt") << RT_SHIFT
    elif fmt is Fmt.R2:
        word |= _check_reg(instr.rd, "rd") << RD_SHIFT
        word |= _check_reg(instr.rs, "rs") << RS_SHIFT
    elif fmt is Fmt.R1:
        word |= _check_reg(instr.rd, "rd") << RD_SHIFT
    elif fmt is Fmt.RI:
        if not IMM14_MIN <= instr.imm <= IMM14_MAX:
            raise EncodingError(
                f"imm14 out of range for {meta.mnemonic}: {instr.imm}")
        word |= _check_reg(instr.rd, "rd") << RD_SHIFT
        word |= _check_reg(instr.rs, "rs") << RS_SHIFT
        word |= instr.imm & IMM14_MASK
    elif fmt is Fmt.RI16:
        if not IMM16_MIN <= instr.imm <= 0xFFFF:
            raise EncodingError(
                f"imm16 out of range for {meta.mnemonic}: {instr.imm}")
        word |= _check_reg(instr.rd, "rd") << RD_SHIFT
        word |= instr.imm & IMM16_MASK
    elif fmt is Fmt.B:
        if not IMM16_MIN <= instr.imm <= IMM16_MAX:
            raise EncodingError(
                f"branch offset out of range for {meta.mnemonic}: "
                f"{instr.imm}")
        word |= _check_reg(instr.rd, "rd") << RD_SHIFT
        word |= instr.imm & IMM16_MASK
    elif fmt is Fmt.SYS:
        if not 0 <= instr.imm <= 0xFFFF:
            raise EncodingError(
                f"service number out of range: {instr.imm}")
        word |= instr.imm & IMM16_MASK
    elif fmt is Fmt.N:
        pass
    else:  # pragma: no cover - exhaustive over Fmt
        raise EncodingError(f"unknown format {fmt}")
    return word & WORD_MASK


class DecodeError(ValueError):
    """Raised when a word does not decode to a valid instruction."""

    def __init__(self, word: int, reason: str):
        super().__init__(f"cannot decode {word:#010x}: {reason}")
        self.word = word
        self.reason = reason


def decode(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`DecodeError` for undefined opcodes — the machine turns
    this into an illegal-instruction fault, which is how control-flow
    errors that land on garbage get detected "by hardware".
    """
    word &= WORD_MASK
    opcode = word >> OPCODE_SHIFT
    if not is_valid_opcode(opcode):
        raise DecodeError(word, f"undefined opcode {opcode:#x}")
    op = Op(opcode)
    meta = info(op)
    fmt = meta.fmt
    rd = (word >> RD_SHIFT) & REG_MASK
    rs = (word >> RS_SHIFT) & REG_MASK
    rt = (word >> RT_SHIFT) & REG_MASK
    if fmt is Fmt.R3:
        return Instruction(op=op, rd=rd, rs=rs, rt=rt)
    if fmt is Fmt.R2:
        return Instruction(op=op, rd=rd, rs=rs)
    if fmt is Fmt.R1:
        return Instruction(op=op, rd=rd)
    if fmt is Fmt.RI:
        return Instruction(op=op, rd=rd, rs=rs,
                           imm=sign_extend(word, 14))
    if fmt is Fmt.RI16:
        return Instruction(op=op, rd=rd, imm=sign_extend(word, 16))
    if fmt is Fmt.B:
        return Instruction(op=op, rd=rd, imm=sign_extend(word, 16))
    if fmt is Fmt.SYS:
        return Instruction(op=op, imm=word & IMM16_MASK)
    return Instruction(op=op)


def flip_offset_bit(word: int, bit: int) -> int:
    """Flip bit ``bit`` (0..15) of a direct branch's offset field.

    This is the primitive of the paper's address-offset fault model.
    """
    if not 0 <= bit < BRANCH_OFFSET_BITS:
        raise ValueError(f"offset bit out of range: {bit}")
    return (word ^ (1 << bit)) & WORD_MASK


def encode_program(instructions: list[Instruction]) -> bytes:
    """Encode a sequence of instructions into little-endian bytes."""
    blob = bytearray()
    for instr in instructions:
        blob += encode(instr).to_bytes(4, "little")
    return bytes(blob)
