"""R32: the guest/host instruction set of the reproduction.

This package defines everything about the synthetic 32-bit ISA the
reproduction uses in place of IA-32/EM64T: opcodes and their metadata,
the flags model, binary encoding, an assembler and a disassembler.  See
DESIGN.md for why each ISA feature exists (each one backs a specific
mechanism in the paper).
"""

from repro.isa.assembler import Assembler, AssemblyError, assemble
from repro.isa.disassembler import disassemble_program, disassemble_word
from repro.isa.encoding import (BRANCH_OFFSET_BITS, DecodeError,
                                EncodingError, decode, encode,
                                flip_offset_bit)
from repro.isa.flags import Cond, Flag, evaluate_cond
from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.opcodes import Fmt, Kind, Op, OpInfo, info
from repro.isa.program import (DATA_BASE, MEMORY_SIZE, STACK_TOP, TEXT_BASE,
                               Program)

__all__ = [
    "Assembler", "AssemblyError", "assemble",
    "disassemble_program", "disassemble_word",
    "BRANCH_OFFSET_BITS", "DecodeError", "EncodingError", "decode",
    "encode", "flip_offset_bit",
    "Cond", "Flag", "evaluate_cond",
    "WORD_SIZE", "Instruction",
    "Fmt", "Kind", "Op", "OpInfo", "info",
    "DATA_BASE", "MEMORY_SIZE", "STACK_TOP", "TEXT_BASE", "Program",
]
