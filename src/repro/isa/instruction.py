"""The :class:`Instruction` value type shared across the toolchain.

An ``Instruction`` is the decoded, register/immediate-level view of one
32-bit R32 word.  The assembler produces them, the encoder serializes
them, the machine executes them, the CFG builder and the translator
analyze them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import registers
from repro.isa.opcodes import OP_TABLE, Fmt, Kind, Op, OpInfo

WORD_SIZE = 4
"""Bytes per instruction (fixed-width encoding)."""


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a signed integer."""
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded R32 instruction.

    Field usage by format:

    ========  ======================================================
    ``R3``    rd, rs, rt
    ``R2``    rd, rs
    ``R1``    rd
    ``RI``    rd, rs, imm (signed 14-bit)
    ``RI16``  rd, imm (signed 16-bit)
    ``B``     imm = branch offset in *words* relative to pc+4;
              rd only for jrz/jrnz
    ``SYS``   imm = service / trap number (unsigned 16-bit)
    ``N``     no fields
    ========  ======================================================
    """

    op: Op
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0

    @property
    def meta(self) -> OpInfo:
        """Opcode metadata (format, cycles, flag behaviour, kind)."""
        return OP_TABLE[self.op]

    @property
    def is_branch(self) -> bool:
        return self.meta.is_branch

    @property
    def is_terminator(self) -> bool:
        return self.meta.is_block_terminator

    def branch_target(self, pc: int) -> int:
        """Absolute target of a direct branch located at address ``pc``."""
        meta = self.meta
        if not meta.is_direct_branch:
            raise ValueError(f"{meta.mnemonic} has no encoded target")
        return pc + WORD_SIZE + self.imm * WORD_SIZE

    def fall_through(self, pc: int) -> int:
        """Address of the next sequential instruction."""
        return pc + WORD_SIZE

    def __str__(self) -> str:
        meta = self.meta
        name = meta.mnemonic
        reg = registers.register_name
        if meta.fmt is Fmt.R3:
            if name in ("cmp", "test"):
                # Comparisons have no destination; printing the encoded
                # (always-zero) rd would not re-assemble.
                return f"{name} {reg(self.rs)}, {reg(self.rt)}"
            return f"{name} {reg(self.rd)}, {reg(self.rs)}, {reg(self.rt)}"
        if meta.fmt is Fmt.R2:
            return f"{name} {reg(self.rd)}, {reg(self.rs)}"
        if meta.fmt is Fmt.R1:
            return f"{name} {reg(self.rd)}"
        if meta.fmt is Fmt.RI:
            if name == "cmpi":
                return f"{name} {reg(self.rs)}, {self.imm}"
            return f"{name} {reg(self.rd)}, {reg(self.rs)}, {self.imm}"
        if meta.fmt is Fmt.RI16:
            return f"{name} {reg(self.rd)}, {self.imm}"
        if meta.fmt is Fmt.B:
            if meta.kind is Kind.BRANCH_REG:
                return f"{name} {reg(self.rd)}, {self.imm}"
            return f"{name} {self.imm}"
        if meta.fmt is Fmt.SYS:
            return f"{name} {self.imm}"
        return name


def make_branch(op: Op, offset_words: int, rd: int = 0) -> Instruction:
    """Build a direct branch with an offset in words."""
    return Instruction(op=op, rd=rd, imm=offset_words)


def branch_offset_for(pc: int, target: int) -> int:
    """Word offset that makes a branch at ``pc`` reach ``target``."""
    delta = target - (pc + WORD_SIZE)
    if delta % WORD_SIZE:
        raise ValueError(f"unaligned branch target {target:#x} from {pc:#x}")
    return delta // WORD_SIZE
