"""Register file definition for the R32 ISA.

The R32 machine has 32 general-purpose 32-bit registers.  Mirroring the
paper's IA-32 -> EM64T translation setup (Section 5.1), the *guest*
instruction set is restricted to the low half (``r0``..``r15``) while the
translated (host) code produced by the dynamic binary translator may also
use the high half (``r16``..``r31``).  This is what lets the DBT dedicate
registers to the control-flow-checking state (PC', RTS, ...) "without
spilling registers", exactly as the paper describes for EM64T.

Conventions
-----------
``r15`` (alias ``sp``)
    Stack pointer, used implicitly by ``push``/``pop``/``call``/``ret``.
``r14`` (alias ``fp``)
    Frame pointer by convention only; nothing in the ISA treats it
    specially.
``r16`` (alias ``pcp``)
    The shadow program counter PC' used by every signature-monitoring
    technique.  Host-only.
``r17`` (alias ``rts``)
    The run-time adjusting signature register used by the ECF technique.
    Host-only.
``r18`` (alias ``aux``)
    Scratch register for conditional signature updates (the ``AUX``
    register in the paper's Figure 8).  Host-only.
``r19``..``r21`` (aliases ``t0``..``t2``)
    Host-only scratch registers for the translator and the checking
    techniques (dynamic-branch target capture, check temporaries, ...).
"""

from __future__ import annotations

NUM_REGISTERS = 32
"""Total architectural registers (host view)."""

NUM_GUEST_REGISTERS = 16
"""Registers a guest binary may legally use (``r0``..``r15``)."""

# Named register indices -------------------------------------------------

SP = 15
FP = 14

# Host-only registers reserved for the DBT and the checking techniques.
PCP = 16  #: shadow PC (the paper's PC')
RTS = 17  #: run-time adjusting signature (ECF)
AUX = 18  #: conditional-update scratch (paper Figure 8)
T0 = 19   #: translator scratch
T1 = 20   #: translator scratch
T2 = 21   #: translator scratch

# Data-flow duplication (the paper's future-work extension) scratch.
DF0 = 22  #: duplicated first operand
DF1 = 23  #: duplicated second operand
DF2 = 24  #: duplicated result / comparison scratch
SDW = 25  #: base address of the shadow register file in memory

REGISTER_ALIASES: dict[str, int] = {
    "sp": SP,
    "fp": FP,
    "pcp": PCP,
    "rts": RTS,
    "aux": AUX,
    "t0": T0,
    "t1": T1,
    "t2": T2,
    "df0": DF0,
    "df1": DF1,
    "df2": DF2,
    "sdw": SDW,
}

_ALIAS_BY_INDEX = {index: alias for alias, index in REGISTER_ALIASES.items()}


def register_name(index: int) -> str:
    """Return the canonical assembly name for register ``index``.

    Aliased registers print as their alias (``sp``, ``pcp``, ...) so that
    disassembly reads like the paper's listings.
    """
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return _ALIAS_BY_INDEX.get(index, f"r{index}")


def parse_register(name: str) -> int:
    """Parse an assembly register token (``r7``, ``sp``, ``pcp``...)."""
    token = name.strip().lower()
    if token in REGISTER_ALIASES:
        return REGISTER_ALIASES[token]
    if token.startswith("r"):
        try:
            index = int(token[1:], 10)
        except ValueError:
            raise ValueError(f"bad register name: {name!r}") from None
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ValueError(f"bad register name: {name!r}")


def is_guest_register(index: int) -> bool:
    """True if a guest binary may legally reference ``index``."""
    return 0 <= index < NUM_GUEST_REGISTERS


def is_host_only_register(index: int) -> bool:
    """True if ``index`` is reserved for translated (host) code."""
    return NUM_GUEST_REGISTERS <= index < NUM_REGISTERS
