"""Two-pass assembler for R32 assembly.

Syntax overview::

    ; comment                      # comment
    .text                          switch to the text section
    .data                          switch to the data section
    .entry main                    set the program entry point
    .align 4                       align the current section
    .word 1, 2, label              32-bit data words (labels allowed)
    .byte 1, 2, 3                  bytes
    .asciz "hello"                 NUL-terminated string
    .space 64                      zero-filled bytes

    label:                         define a label
    add r1, r2, r3                 plain instructions
    movi r1, 42
    ld r1, r2, 8                   r1 = mem32[r2 + 8]
    jz loop                        branches take label or numeric offset
    const r1, buffer               pseudo: load a 32-bit constant/label
                                   (always movhi+movlo, 2 words)

Immediates accept decimal, ``0x`` hex, and ``label`` / ``label+imm`` /
``label-imm`` expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import registers
from repro.isa.encoding import encode
from repro.isa.instruction import WORD_SIZE, Instruction, branch_offset_for
from repro.isa.opcodes import MNEMONIC_TO_OP, Fmt, Kind, Op, info
from repro.isa.program import DATA_BASE, TEXT_BASE, Program


class AssemblyError(ValueError):
    """Assembly failed; carries file/line context."""

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None):
        location = f" (line {line_no}: {line!r})" if line_no else ""
        super().__init__(message + location)
        self.line_no = line_no


@dataclass
class _Item:
    """One sized item placed in a section during pass 1."""

    kind: str                 # "instr", "words", "bytes", "space"
    address: int = 0
    size: int = 0
    mnemonic: str = ""
    operands: list[str] = field(default_factory=list)
    values: list[str] = field(default_factory=list)
    raw: bytes = b""
    line_no: int = 0
    line: str = ""


class Assembler:
    """Two-pass assembler: size/labels first, then encode."""

    def __init__(self, text_base: int = TEXT_BASE,
                 data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    # -- public API ------------------------------------------------------

    def assemble(self, source: str, name: str = "<asm>") -> Program:
        """Assemble ``source`` into a loadable :class:`Program`."""
        text_items, data_items, labels, entry_label = self._pass1(source)
        text = bytearray()
        for item in text_items:
            text += self._materialize(item, labels)
        data = bytearray()
        for item in data_items:
            data += self._materialize(item, labels)
        entry = self.text_base
        if entry_label is not None:
            if entry_label not in labels:
                raise AssemblyError(f"undefined entry label {entry_label!r}")
            entry = labels[entry_label]
        return Program(text=bytes(text), data=bytes(data),
                       text_base=self.text_base, data_base=self.data_base,
                       entry=entry, symbols=dict(labels), source_name=name)

    # -- pass 1: layout ----------------------------------------------------

    def _pass1(self, source: str):
        section = "text"
        cursors = {"text": self.text_base, "data": self.data_base}
        items: dict[str, list[_Item]] = {"text": [], "data": []}
        labels: dict[str, int] = {}
        entry_label: str | None = None

        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            if not line:
                continue
            # Labels (possibly several, possibly followed by code).
            while True:
                head, sep, rest = line.partition(":")
                if sep and _is_label(head.strip()):
                    label = head.strip()
                    if label in labels:
                        raise AssemblyError(
                            f"duplicate label {label!r}", line_no, raw_line)
                    labels[label] = cursors[section]
                    line = rest.strip()
                    if not line:
                        break
                else:
                    break
            if not line:
                continue

            if line.startswith("."):
                directive, _, arg = line.partition(" ")
                arg = arg.strip()
                if directive == ".text":
                    section = "text"
                elif directive == ".data":
                    section = "data"
                elif directive == ".entry":
                    entry_label = arg
                elif directive == ".global":
                    pass  # accepted for familiarity; everything is global
                elif directive == ".align":
                    amount = _parse_int(arg, line_no, raw_line)
                    cursor = cursors[section]
                    pad = (-cursor) % amount
                    if pad:
                        items[section].append(_Item(
                            kind="space", address=cursor, size=pad,
                            line_no=line_no, line=raw_line))
                        cursors[section] += pad
                elif directive == ".word":
                    values = _split_operands(arg)
                    item = _Item(kind="words", address=cursors[section],
                                 size=4 * len(values), values=values,
                                 line_no=line_no, line=raw_line)
                    items[section].append(item)
                    cursors[section] += item.size
                elif directive == ".byte":
                    values = _split_operands(arg)
                    raw = bytes(_parse_int(v, line_no, raw_line) & 0xFF
                                for v in values)
                    items[section].append(_Item(
                        kind="bytes", address=cursors[section],
                        size=len(raw), raw=raw, line_no=line_no,
                        line=raw_line))
                    cursors[section] += len(raw)
                elif directive == ".asciz":
                    raw = _parse_string(arg, line_no, raw_line) + b"\x00"
                    items[section].append(_Item(
                        kind="bytes", address=cursors[section],
                        size=len(raw), raw=raw, line_no=line_no,
                        line=raw_line))
                    cursors[section] += len(raw)
                elif directive == ".space":
                    amount = _parse_int(arg, line_no, raw_line)
                    items[section].append(_Item(
                        kind="space", address=cursors[section], size=amount,
                        line_no=line_no, line=raw_line))
                    cursors[section] += amount
                else:
                    raise AssemblyError(
                        f"unknown directive {directive!r}", line_no,
                        raw_line)
                continue

            # Instruction.
            if section != "text":
                raise AssemblyError("instructions must be in .text",
                                    line_no, raw_line)
            mnemonic, _, operand_str = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = _split_operands(operand_str)
            size = self._instruction_size(mnemonic, line_no, raw_line)
            items["text"].append(_Item(
                kind="instr", address=cursors["text"], size=size,
                mnemonic=mnemonic, operands=operands, line_no=line_no,
                line=raw_line))
            cursors["text"] += size

        return items["text"], items["data"], labels, entry_label

    def _instruction_size(self, mnemonic: str, line_no: int,
                          line: str) -> int:
        if mnemonic == "const":
            return 2 * WORD_SIZE
        if mnemonic not in MNEMONIC_TO_OP:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no,
                                line)
        return WORD_SIZE

    # -- pass 2: encoding --------------------------------------------------

    def _materialize(self, item: _Item, labels: dict[str, int]) -> bytes:
        if item.kind == "space":
            return bytes(item.size)
        if item.kind == "bytes":
            return item.raw
        if item.kind == "words":
            blob = bytearray()
            for value in item.values:
                number = self._eval(value, labels, item)
                blob += (number & 0xFFFFFFFF).to_bytes(4, "little")
            return bytes(blob)
        assert item.kind == "instr"
        instructions = self._encode_instruction(item, labels)
        blob = bytearray()
        for instr in instructions:
            try:
                blob += encode(instr).to_bytes(4, "little")
            except ValueError as exc:
                raise AssemblyError(str(exc), item.line_no,
                                    item.line) from exc
        return bytes(blob)

    def _encode_instruction(self, item: _Item,
                            labels: dict[str, int]) -> list[Instruction]:
        mnemonic = item.mnemonic
        ops = item.operands

        if mnemonic == "const":
            self._expect(len(ops) == 2, item, "const rd, value")
            rd = self._reg(ops[0], item)
            value = self._eval(ops[1], labels, item) & 0xFFFFFFFF
            return [
                Instruction(op=Op.MOVHI, rd=rd, imm=(value >> 16) & 0xFFFF),
                Instruction(op=Op.MOVLO, rd=rd, imm=value & 0xFFFF),
            ]

        op = MNEMONIC_TO_OP[mnemonic]
        meta = info(op)
        fmt = meta.fmt

        if fmt is Fmt.R3:
            if mnemonic in ("cmp", "test"):
                # Comparisons have no destination: cmp rs, rt.
                self._expect(len(ops) == 2, item, f"{mnemonic} rs, rt")
                return [Instruction(op=op, rd=0,
                                    rs=self._reg(ops[0], item),
                                    rt=self._reg(ops[1], item))]
            self._expect(len(ops) == 3, item, f"{mnemonic} rd, rs, rt")
            return [Instruction(op=op, rd=self._reg(ops[0], item),
                                rs=self._reg(ops[1], item),
                                rt=self._reg(ops[2], item))]
        if fmt is Fmt.R2:
            self._expect(len(ops) == 2, item, f"{mnemonic} rd, rs")
            return [Instruction(op=op, rd=self._reg(ops[0], item),
                                rs=self._reg(ops[1], item))]
        if fmt is Fmt.R1:
            self._expect(len(ops) == 1, item, f"{mnemonic} rd")
            return [Instruction(op=op, rd=self._reg(ops[0], item))]
        if fmt is Fmt.RI:
            if mnemonic == "cmpi":
                # cmp rs, imm — no destination.
                self._expect(len(ops) == 2, item, "cmpi rs, imm")
                return [Instruction(op=op, rd=0,
                                    rs=self._reg(ops[0], item),
                                    imm=self._eval_signed(ops[1], labels,
                                                          item))]
            self._expect(len(ops) == 3, item, f"{mnemonic} rd, rs, imm")
            return [Instruction(op=op, rd=self._reg(ops[0], item),
                                rs=self._reg(ops[1], item),
                                imm=self._eval_signed(ops[2], labels,
                                                      item))]
        if fmt is Fmt.RI16:
            self._expect(len(ops) == 2, item, f"{mnemonic} rd, imm")
            imm = self._eval_signed(ops[1], labels, item)
            if mnemonic in ("movhi", "movlo") and imm < 0:
                imm &= 0xFFFF
            return [Instruction(op=op, rd=self._reg(ops[0], item), imm=imm)]
        if fmt is Fmt.B:
            if meta.kind is Kind.BRANCH_REG:
                self._expect(len(ops) == 2, item, f"{mnemonic} rd, target")
                rd = self._reg(ops[0], item)
                target_expr = ops[1]
            else:
                self._expect(len(ops) == 1, item, f"{mnemonic} target")
                rd = 0
                target_expr = ops[0]
            offset = self._branch_offset(target_expr, labels, item)
            return [Instruction(op=op, rd=rd, imm=offset)]
        if fmt is Fmt.SYS:
            self._expect(len(ops) == 1, item, f"{mnemonic} number")
            return [Instruction(op=op,
                                imm=self._eval(ops[0], labels, item))]
        if fmt is Fmt.N:
            self._expect(len(ops) == 0, item, mnemonic)
            return [Instruction(op=op)]
        raise AssemblyError(f"unhandled format {fmt}", item.line_no,
                            item.line)  # pragma: no cover

    # -- helpers -----------------------------------------------------------

    def _branch_offset(self, expr: str, labels: dict[str, int],
                       item: _Item) -> int:
        # A bare signed number is a raw word offset; anything else is an
        # absolute target expression (usually a label).
        try:
            return _parse_int(expr, item.line_no, item.line)
        except AssemblyError:
            pass
        target = self._eval(expr, labels, item)
        try:
            return branch_offset_for(item.address, target)
        except ValueError as exc:
            raise AssemblyError(str(exc), item.line_no, item.line) from exc

    def _reg(self, token: str, item: _Item) -> int:
        try:
            return registers.parse_register(token)
        except ValueError as exc:
            raise AssemblyError(str(exc), item.line_no, item.line) from exc

    def _eval(self, expr: str, labels: dict[str, int], item: _Item) -> int:
        expr = expr.strip()
        for sep in ("+", "-"):
            # label+imm / label-imm (label must come first)
            idx = expr.find(sep, 1)
            if idx > 0 and _is_label(expr[:idx].strip()):
                base = self._eval(expr[:idx].strip(), labels, item)
                offset = _parse_int(expr[idx + 1:].strip(), item.line_no,
                                    item.line)
                return base + offset if sep == "+" else base - offset
        if _is_label(expr):
            if expr not in labels:
                raise AssemblyError(f"undefined label {expr!r}",
                                    item.line_no, item.line)
            return labels[expr]
        return _parse_int(expr, item.line_no, item.line)

    def _eval_signed(self, expr: str, labels: dict[str, int],
                     item: _Item) -> int:
        value = self._eval(expr, labels, item)
        if value >= 0x80000000:
            value -= 0x100000000
        return value

    @staticmethod
    def _expect(ok: bool, item: _Item, usage: str) -> None:
        if not ok:
            raise AssemblyError(f"usage: {usage}", item.line_no, item.line)


# -- lexical helpers ---------------------------------------------------------


def _strip_comment(line: str) -> str:
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char in (";", "#") and not in_string:
            return line[:index]
    return line


def _is_label(token: str) -> bool:
    return bool(token) and (token[0].isalpha() or token[0] in "._") and all(
        ch.isalnum() or ch in "._$" for ch in token)


def _split_operands(operand_str: str) -> list[str]:
    operand_str = operand_str.strip()
    if not operand_str:
        return []
    if operand_str.startswith('"'):
        return [operand_str]
    return [part.strip() for part in operand_str.split(",")]


def _parse_int(token: str, line_no: int, line: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad integer {token!r}", line_no,
                            line) from None


def _parse_string(token: str, line_no: int, line: str) -> bytes:
    token = token.strip()
    if len(token) < 2 or token[0] != '"' or token[-1] != '"':
        raise AssemblyError(f"bad string literal {token}", line_no, line)
    body = token[1:-1]
    return body.encode("utf-8").decode("unicode_escape").encode("latin-1")


def assemble(source: str, name: str = "<asm>", **kwargs) -> Program:
    """Convenience one-shot assembly entry point."""
    return Assembler(**kwargs).assemble(source, name=name)
