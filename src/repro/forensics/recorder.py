"""The flight recorder: block-entry events + periodic state checkpoints.

The recorder installs itself in the CPU's ``branch_profiler`` slot —
the same free hook the observability branch counter uses — so it sees
every *direct* branch execution: the control-flow skeleton of the run,
at block granularity, with no new conditional anywhere in the
interpreter hot loop.  A run with no recorder attached executes exactly
the code it always did (``cpu.branch_profiler is None``).

Two streams are captured:

* **events** — one :class:`BlockEvent` per direct-branch execution:
  the branch's pc (guest address natively, cache address under the
  DBT), the dynamic instruction count, the model cycle count, and the
  resolved direction.  A bounded ring by default; the divergence
  analyzer runs with ``capacity=None`` for a full trace.
* **checkpoints** — every ``checkpoint_interval`` events, a
  :class:`Checkpoint` of the architectural state: guest registers,
  FLAGS, and the technique's signature register(s) (PC', plus RTS for
  ECF).  Checkpoints let the analyzer report the *state delta* at the
  first divergence without snapshotting 32 registers per branch.

Indirect transfers (``jmpr``/``callr``/``ret``) carry no profiler hook
— exactly like :class:`~repro.machine.profile.BranchProfiler` — so
they appear in the stream implicitly, through the direct branches of
the blocks they land in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.isa.registers import NUM_GUEST_REGISTERS, PCP

#: Default ring capacity (events) for debugging use; the divergence
#: analyzer passes ``capacity=None`` for an unbounded trace.
DEFAULT_CAPACITY = 4096
#: Events between architectural-state checkpoints.
DEFAULT_CHECKPOINT_INTERVAL = 16


@dataclass(frozen=True)
class BlockEvent:
    """One direct-branch execution: a block-entry edge of the run."""

    pc: int         #: address of the branch instruction
    icount: int     #: cpu.icount when the branch executed
    cycles: int     #: cpu.cycles when the branch executed
    taken: bool     #: resolved direction

    def key(self) -> tuple[int, bool]:
        """The identity the divergence comparison uses."""
        return (self.pc, self.taken)


@dataclass(frozen=True)
class Checkpoint:
    """Periodic architectural-state snapshot."""

    ordinal: int                 #: 0-based checkpoint index
    icount: int
    cycles: int
    pc: int
    regs: tuple[int, ...]        #: guest registers r0..r15
    flags: int
    signatures: tuple[int, ...]  #: the technique's signature registers


class FlightRecorder:
    """Ring of block-entry events plus periodic state checkpoints.

    Installs in the ``branch_profiler`` slot; an existing profiler is
    chained (both observe the stream), mirroring
    :class:`repro.machine.trace.Tracer`'s hook discipline.
    """

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY,
                 checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                 signature_regs: tuple[int, ...] = (PCP,)):
        self.events: deque[BlockEvent] = deque(maxlen=capacity)
        self.checkpoints: list[Checkpoint] = []
        self.checkpoint_interval = max(1, checkpoint_interval)
        self.signature_regs = signature_regs
        self._cpu = None
        self._chained = None
        self._since_checkpoint = 0

    # -- installation -----------------------------------------------------

    def attach(self, cpu) -> None:
        """Install on ``cpu``; chains any profiler already there."""
        self._cpu = cpu
        self._chained = cpu.branch_profiler
        cpu.branch_profiler = self

    def detach(self) -> None:
        """Restore the chained profiler (if the slot is still ours)."""
        if self._cpu is not None and self._cpu.branch_profiler is self:
            self._cpu.branch_profiler = self._chained
        self._cpu = None
        self._chained = None

    # -- the profiler-slot protocol ---------------------------------------

    def record(self, pc: int, instr, taken: bool, flags: int) -> None:
        cpu = self._cpu
        self.events.append(BlockEvent(pc=pc, icount=cpu.icount,
                                      cycles=cpu.cycles, taken=taken))
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_interval:
            self._since_checkpoint = 0
            self._take_checkpoint(pc)
        if self._chained is not None:
            self._chained.record(pc, instr, taken, flags)

    def _take_checkpoint(self, pc: int) -> None:
        cpu = self._cpu
        regs = cpu.regs
        self.checkpoints.append(Checkpoint(
            ordinal=len(self.checkpoints),
            icount=cpu.icount, cycles=cpu.cycles, pc=pc,
            regs=tuple(regs[:NUM_GUEST_REGISTERS]), flags=cpu.flags,
            signatures=tuple(regs[r] for r in self.signature_regs)))

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def event_list(self) -> list[BlockEvent]:
        return list(self.events)
