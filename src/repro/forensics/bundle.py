"""The JSONL forensics bundle a ``--forensics`` campaign writes.

One line per sampled escape, next to the campaign journal
(``<journal>.forensics.jsonl``).  Each entry is self-contained: the
fault spec (round-trippable through :func:`spec_to_json` /
:func:`spec_from_json`), the run outcome, the full
:class:`~repro.forensics.divergence.Divergence` record, and the
escape attribution — everything ``repro explain --bundle`` needs to
re-render the timeline without re-running the campaign.

Entries are keyed by the spec's **global campaign index** (its position
in the flattened spec list), which is stable across serial, parallel
and journal-resumed executions — so ``--jobs 8`` and ``--jobs 1``
produce byte-identical bundles for the same campaign.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.faults.cache import config_key, program_digest
from repro.faults.campaign import PipelineConfig
from repro.faults.injector import (CacheFaultSpec, DirectionFault,
                                   FaultSpec, FlagBitFault,
                                   OffsetBitFault, RedirectFault,
                                   RegisterFaultSpec, SchedFaultSpec)

BUNDLE_VERSION = 1

#: Default escape sample size for a bare ``--forensics`` flag.
DEFAULT_SAMPLES = 8


# -- spec (de)serialization --------------------------------------------------

def fault_to_json(fault) -> dict:
    if isinstance(fault, OffsetBitFault):
        return {"kind": "offset", "bit": fault.bit}
    if isinstance(fault, FlagBitFault):
        return {"kind": "flag", "bit": fault.bit}
    if isinstance(fault, DirectionFault):
        return {"kind": "direction", "taken": fault.taken}
    if isinstance(fault, RedirectFault):
        return {"kind": "redirect", "target": fault.target}
    raise TypeError(f"unknown fault type: {type(fault).__name__}")


def fault_from_json(data: dict):
    kind = data["kind"]
    if kind == "offset":
        return OffsetBitFault(bit=data["bit"])
    if kind == "flag":
        return FlagBitFault(bit=data["bit"])
    if kind == "direction":
        return DirectionFault(taken=data["taken"])
    if kind == "redirect":
        return RedirectFault(target=data["target"])
    raise ValueError(f"unknown fault kind: {kind!r}")


def spec_to_json(spec) -> dict:
    if isinstance(spec, FaultSpec):
        data = {"kind": "branch", "pc": spec.branch_pc,
                "occurrence": spec.occurrence,
                "fault": fault_to_json(spec.fault)}
        if spec.thread is not None:
            # Only present on thread-targeted specs, so pre-MT bundles
            # keep their exact byte shape.
            data["thread"] = spec.thread
        return data
    if isinstance(spec, SchedFaultSpec):
        return {"kind": "sched", "switch": spec.switch,
                "sched_kind": spec.kind, "tid": spec.tid,
                "reg": spec.reg, "bit": spec.bit}
    if isinstance(spec, RegisterFaultSpec):
        return {"kind": "register", "icount": spec.icount,
                "reg": spec.reg, "bit": spec.bit}
    if isinstance(spec, CacheFaultSpec):
        return {"kind": "cache", "addr": spec.cache_addr,
                "occurrence": spec.occurrence, "bit": spec.bit,
                "force_taken": spec.force_taken}
    raise TypeError(f"unknown spec type: {type(spec).__name__}")


def spec_from_json(data: dict):
    kind = data["kind"]
    if kind == "branch":
        return FaultSpec(branch_pc=data["pc"],
                         occurrence=data["occurrence"],
                         fault=fault_from_json(data["fault"]),
                         thread=data.get("thread"))
    if kind == "sched":
        return SchedFaultSpec(switch=data["switch"],
                              kind=data["sched_kind"],
                              tid=data["tid"], reg=data["reg"],
                              bit=data["bit"])
    if kind == "register":
        return RegisterFaultSpec(icount=data["icount"], reg=data["reg"],
                                 bit=data["bit"])
    if kind == "cache":
        return CacheFaultSpec(cache_addr=data["addr"],
                              occurrence=data["occurrence"],
                              bit=data["bit"],
                              force_taken=data["force_taken"])
    raise ValueError(f"unknown spec kind: {kind!r}")


# -- the bundle --------------------------------------------------------------

def bundle_path_for(journal: str | Path | None) -> Path:
    """Where a campaign's forensics bundle lives: next to its journal,
    or ``forensics.jsonl`` in the working directory without one."""
    if journal is None:
        return Path("forensics.jsonl")
    journal = Path(journal)
    return journal.with_name(journal.name + ".forensics.jsonl")


def write_campaign_forensics(program, config: PipelineConfig, escapes,
                             max_samples: int = DEFAULT_SAMPLES,
                             path: str | Path | None = None) -> list[dict]:
    """Replay up to ``max_samples`` sampled escapes and append their
    forensics entries to the bundle at ``path``.

    ``escapes`` is a list of ``(global_index, spec)`` pairs as produced
    by :meth:`repro.faults.executor.CampaignExecutor.escape_specs`.
    Sampling takes the first N by global index — deterministic across
    serial/parallel/resumed executions.  Replays run serially in the
    parent (two bounded runs each); returns the entries written.
    """
    from repro.forensics.attribution import attribute_escape
    from repro.forensics.divergence import GoldenDivergenceAnalyzer

    sampled = sorted(escapes, key=lambda item: item[0])[:max_samples]
    if not sampled:
        return []
    analyzer = GoldenDivergenceAnalyzer(program, config)
    digest = program_digest(program)
    config_id = list(config_key(config))
    entries: list[dict] = []
    for index, spec in sampled:
        divergence = analyzer.analyze(spec)
        attribution = attribute_escape(divergence, config, spec=spec)
        entries.append({
            "v": BUNDLE_VERSION,
            "program": digest,
            "config": config_id,
            "index": index,
            "spec": spec_to_json(spec),
            "outcome": divergence.outcome.value,
            "attribution": attribution.to_json(),
            "divergence": divergence.to_json(),
        })
    if path is not None:
        path = Path(path)
        with path.open("a", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entries


def read_bundle(path: str | Path) -> list[dict]:
    """All entries of a forensics bundle, in file order."""
    entries: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries
