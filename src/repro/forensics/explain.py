"""``repro explain`` — the annotated per-run forensics timeline.

Turns one fault spec (inline, or loaded from a forensics bundle) into
a human-readable narrative: what was injected where, where the run
first left the golden trace, which Section-2 category the landing
fell into, what architectural state had drifted by then, which checks
the error crossed without firing, and — for detected runs — the
fail-stop latency in both instructions and cycles.
"""

from __future__ import annotations

from repro.isa.disassembler import format_instruction
from repro.isa.instruction import WORD_SIZE
from repro.faults.campaign import Outcome, PipelineConfig
from repro.forensics.attribution import (EscapeAttribution,
                                         attribute_escape)
from repro.forensics.divergence import (Divergence,
                                        GoldenDivergenceAnalyzer)

#: Instructions shown on each side of an annotated address.
DISASM_CONTEXT = 2

#: Silent-check sites listed before eliding (long MT runs cross
#: thousands).
MAX_SILENT_CHECKS = 24


def explain_spec(program, config: PipelineConfig, spec
                 ) -> tuple[Divergence, EscapeAttribution, str]:
    """Replay ``spec``, attribute its outcome, and render the report."""
    analyzer = GoldenDivergenceAnalyzer(program, config)
    divergence = analyzer.analyze(spec)
    attribution = attribute_escape(divergence, config, spec=spec)
    text = render_explanation(program, config, divergence, attribution)
    return divergence, attribution, text


# -- rendering ---------------------------------------------------------------

def _disasm_window(program, addr: int, marker: str = ">") -> list[str]:
    """±DISASM_CONTEXT instructions around ``addr``, marked."""
    symbols = {a: name for name, a in program.symbols.items()
               if program.contains_code(a)}
    lines = []
    start = addr - DISASM_CONTEXT * WORD_SIZE
    for pc in range(start, addr + (DISASM_CONTEXT + 1) * WORD_SIZE,
                    WORD_SIZE):
        if not program.contains_code(pc):
            continue
        mark = marker if pc == addr else " "
        text = format_instruction(program.instruction_at(pc), pc, symbols)
        lines.append(f"  {mark} {pc:#07x}: {text}")
    return lines


def _fmt(value, suffix: str = "") -> str:
    return "?" if value is None else f"{value}{suffix}"


def render_explanation(program, config: PipelineConfig,
                       divergence: Divergence,
                       attribution: EscapeAttribution) -> str:
    lines: list[str] = []
    out = lines.append

    out(f"fault     : {divergence.spec_desc}")
    out(f"config    : {config.label()} "
        f"(update={config.update_style.value})")
    out(f"outcome   : {divergence.outcome.value} "
        f"[{divergence.stop_reason}]")
    if divergence.category is not None:
        out(f"category  : {divergence.category.value} "
            f"(Section-2 landing classification)")

    # -- timeline --
    out("")
    out("timeline")
    if divergence.fired_icount is not None:
        out(f"  injected    at icount {divergence.fired_icount}"
            + (f", cycle {divergence.fired_cycles}"
               if divergence.fired_cycles is not None else "")
            + (f", in thread {divergence.fired_tid}"
               if divergence.fired_tid is not None
               and getattr(config, "threads", False) else ""))
    else:
        out("  injected    (fault never fired)")
    if divergence.diverged:
        if divergence.divergence_icount is not None:
            where = (f" at {divergence.divergence_guest:#x}"
                     if divergence.divergence_guest is not None else
                     (f" at cache pc {divergence.divergence_pc:#x}"
                      if divergence.divergence_pc is not None else ""))
            out(f"  diverged    at icount "
                f"{divergence.divergence_icount}{where} "
                f"(+{_fmt(divergence.to_divergence_instructions)} instr"
                + (f", +{divergence.to_divergence_cycles} cycles"
                   if divergence.to_divergence_cycles is not None
                   else "") + ")")
        else:
            out("  diverged    (faulted run stopped before the golden "
                "trace's next block entry)")
    else:
        out("  diverged    never — block-entry trace matched the "
            "golden run")
    out(f"  stopped     +{_fmt(divergence.to_stop_instructions)} instr"
        + (f", +{divergence.to_stop_cycles} cycles"
           if divergence.to_stop_cycles is not None else "")
        + " after injection")

    # -- detection latency (acceptance: matches RunRecord) --
    if divergence.outcome in (Outcome.DETECTED_SIGNATURE,
                              Outcome.DETECTED_HARDWARE):
        out(f"  detection latency: "
            f"{_fmt(divergence.detection_latency, ' instructions')}, "
            f"{_fmt(divergence.detection_latency_cycles, ' cycles')}")

    # -- recovery timeline --
    recovery = divergence.recovery
    if recovery is not None:
        out("")
        out(f"recovery (interval {recovery.get('interval', '?')}, "
            f"{recovery.get('checkpoints', 0)} mid-run "
            f"checkpoint(s))")
        for event in recovery.get("events", ()):
            kind = event.get("event")
            if kind in ("detected", "watchdog"):
                out(f"  {kind:<11} at icount {event.get('icount')}"
                    f", cycle {event.get('cycles')}")
            elif kind in ("rollback", "restart"):
                target = ("entry checkpoint" if kind == "restart"
                          else f"checkpoint #{event.get('target')}")
                out(f"  {kind:<11} -> {target} "
                    f"(icount {event.get('target_icount')}), "
                    f"re-executing {event.get('distance_icount')} "
                    f"instruction(s) / "
                    f"{event.get('discarded_cycles')} cycle(s)")
            elif kind == "gave-up":
                out(f"  gave up     after {event.get('attempts')} "
                    f"attempt(s): retry budget exhausted")
        survived = divergence.outcome is Outcome.RECOVERED
        out(f"  result      "
            + ("survived — re-execution reached a clean finish"
               if survived else
               f"not recovered ({divergence.outcome.value})"))

    # -- silent checks --
    out("")
    if divergence.silent_checks:
        shown = divergence.silent_checks[:MAX_SILENT_CHECKS]
        sites = ", ".join(f"{pc:#x}" for pc in shown)
        more = len(divergence.silent_checks) - len(shown)
        if more:
            sites += f", … (+{more} more)"
        out(f"checks crossed without firing ({len(divergence.silent_checks)}): {sites}")
    else:
        out(f"checks crossed without firing: none "
            f"({divergence.checks_crossed} crossed total)")

    # -- state delta --
    delta = divergence.state_delta
    if delta is not None:
        out("")
        out(f"state delta at first differing checkpoint "
            f"(icount {delta.icount}, cycle {delta.cycles}):")
        for name, gold, fault in delta.regs:
            out(f"  {name:<5} golden={gold:#010x}  faulted={fault:#010x}")
        if delta.flags is not None:
            out(f"  FLAGS golden={delta.flags[0]:#04x}      "
                f"faulted={delta.flags[1]:#04x}")
        for name, gold, fault in delta.signatures:
            out(f"  {name:<5} golden={gold:#010x}  faulted={fault:#010x}"
                f"  (signature)")
    elif divergence.diverged:
        out("")
        out("state delta: no checkpointed state difference (divergence "
            "between checkpoints or re-converged)")

    # -- attribution --
    out("")
    out(f"escape attribution: {attribution.reason.value}")
    out(f"  {attribution.detail}")
    out(f"  formal note: {attribution.condition_note}")

    # -- disassembly --
    if divergence.injection_site is not None:
        out("")
        out(f"disassembly around injection site "
            f"({divergence.injection_site:#x}):")
        lines.extend(_disasm_window(program, divergence.injection_site))
    guest = divergence.divergence_guest
    if (guest is not None and guest != divergence.injection_site
            and program.contains_code(guest)):
        out("")
        out(f"disassembly around divergence point ({guest:#x}):")
        lines.extend(_disasm_window(program, guest))

    return "\n".join(lines)
