"""Escape attribution: *why* did a fault slip past the technique?

Aggregate campaign results say coverage was lost; this module says
where the loss came from, classified against the Section-4 formal
conditions (:mod:`repro.formal.conditions`):

* **no-check-reached** — the check *policy* left the erroneous region
  unguarded: execution crossed zero CHECK_SIG sites after the fault
  fired.  Outside Assumption 2's universe; sparse policies (RET, END)
  trade exactly this gap for lower overhead.
* **masked-before-update** — the fault never perturbed the signature
  walk or the committed outputs; the run stayed on (or returned to)
  the golden trace.  A benign fault, not a technique failure.
* **mistaken-branch** — category A: the branch took its *other legal*
  direction.  Both directions are legal signature walks, so the error
  is invisible to any pure signature-monitoring technique by
  construction (the paper's data-error exclusion).
* **signature-aliasing** — the run diverged, crossed live checks, and
  every one of them passed: the corrupted signature sequence aliased
  a legal one.  The empirical twin of the sufficient-condition
  counterexamples the formal checker enumerates for CFCSS/ECCA.
* **data-fault-blindspot** — a register data fault under a
  configuration without dataflow duplication; control-flow signatures
  never see it unless it derails a branch.
* **cross-context-escape** — a multithreaded run under
  ``--no-sig-swap``: the fault struck a switched-out thread's *saved*
  signature register, and because signature registers are not part of
  the swapped context the corruption was never carried back into the
  live signature walk — the exact escape the context-switch signature
  protocol (docs/threads.md) exists to close.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.faults.campaign import Outcome, PipelineConfig
from repro.faults.classify import Category
from repro.faults.injector import SchedFaultSpec
from repro.formal.conditions import CONDITION_NOTES
from repro.forensics.divergence import Divergence
from repro.isa.registers import PCP


class EscapeReason(enum.Enum):
    NO_CHECK_REACHED = "no-check-reached"
    MASKED_BEFORE_UPDATE = "masked-before-update"
    MISTAKEN_BRANCH = "mistaken-branch"
    SIGNATURE_ALIASING = "signature-aliasing"
    DATA_FAULT_BLINDSPOT = "data-fault-blindspot"
    CROSS_CONTEXT = "cross-context-escape"
    RECOVERY_EXHAUSTED = "recovery-exhausted"
    NOT_AN_ESCAPE = "not-an-escape"


@dataclass(frozen=True)
class EscapeAttribution:
    """Why one run's fault escaped (or didn't)."""

    reason: EscapeReason
    detail: str            #: one-line, run-specific explanation
    condition_note: str    #: formal grounding from CONDITION_NOTES

    def to_json(self) -> dict:
        return {"reason": self.reason.value, "detail": self.detail}


def _make(reason: EscapeReason, detail: str) -> EscapeAttribution:
    return EscapeAttribution(reason=reason, detail=detail,
                             condition_note=CONDITION_NOTES[reason.value])


def _is_cross_context(spec, config: PipelineConfig) -> bool:
    """A scheduler-state fault on a saved signature register under a
    configuration that does not swap signature registers."""
    return (isinstance(spec, SchedFaultSpec)
            and spec.kind == "ctx-bit"
            and spec.reg >= PCP
            and getattr(config, "threads", False)
            and not getattr(config, "sig_swap", True))


def attribute_escape(divergence: Divergence,
                     config: PipelineConfig,
                     spec=None) -> EscapeAttribution:
    """Classify one :class:`Divergence` record's escape mode.

    ``spec`` (the original fault spec, when the caller still has it)
    enables attributions the divergence record alone cannot make —
    today the multithreaded cross-context escape.
    """
    outcome = divergence.outcome
    if outcome in (Outcome.DETECTED_SIGNATURE, Outcome.DETECTED_HARDWARE):
        return _make(EscapeReason.NOT_AN_ESCAPE,
                     f"detected ({outcome.value}) after "
                     f"{divergence.detection_latency} instructions")
    recovery = divergence.recovery or {}
    if outcome is Outcome.RECOVERED:
        return _make(
            EscapeReason.NOT_AN_ESCAPE,
            f"detected and survived: {recovery.get('attempts', 0)} "
            f"rollback attempt(s) re-executed "
            f"{recovery.get('rollback_icount', 0)} instruction(s) to "
            "a correct finish")
    if outcome is Outcome.RECOVERY_FAILED:
        return _make(
            EscapeReason.RECOVERY_EXHAUSTED,
            f"detected, but {recovery.get('attempts', 0)} rollback "
            f"attempt(s) over {recovery.get('triggers', 0)} trigger(s) "
            "did not reach a clean finish"
            + (" (retry budget exhausted)"
               if recovery.get("gave_up") else ""))

    if _is_cross_context(spec, config):
        tid = spec.tid
        if outcome is Outcome.BENIGN:
            return _make(
                EscapeReason.CROSS_CONTEXT,
                f"corruption of thread {tid}'s saved signature "
                f"register was silently discarded: without signature "
                f"swapping the saved value is never restored, so the "
                f"detection a swapping run would raise is lost")
        return _make(
            EscapeReason.CROSS_CONTEXT,
            f"thread {tid}'s signature state crossed a context switch "
            f"unprotected: signature registers are excluded from the "
            f"swapped context, so the corrupted walk was never "
            f"confronted with the thread's own checks")

    if outcome is Outcome.BENIGN:
        if divergence.category is Category.A and divergence.diverged:
            return _make(
                EscapeReason.MISTAKEN_BRANCH,
                "wrong-direction branch re-converged with the golden "
                "path and produced correct output")
        return _make(
            EscapeReason.MASKED_BEFORE_UPDATE,
            "fault was architecturally masked"
            + ("" if divergence.diverged
               else ": the block-entry trace never left the golden one"))

    # SDC / HANG — genuine coverage loss.
    if divergence.injection_site is None and not config.dataflow:
        return _make(
            EscapeReason.DATA_FAULT_BLINDSPOT,
            "register data fault under a control-flow-only "
            "configuration (dataflow checking disabled)")
    if divergence.category is Category.A:
        return _make(
            EscapeReason.MISTAKEN_BRANCH,
            "branch took its other legal direction — a legal "
            "signature walk no check can distinguish")
    if divergence.checks_crossed == 0:
        policy = config.policy.value
        return _make(
            EscapeReason.NO_CHECK_REACHED,
            f"no CHECK_SIG site executed after injection under the "
            f"'{policy}' policy")
    return _make(
        EscapeReason.SIGNATURE_ALIASING,
        f"{divergence.checks_crossed} check(s) executed after "
        f"injection and all passed — the corrupted signature walk "
        f"aliased a legal one")
