"""``repro.forensics`` — per-run fault forensics.

Aggregate telemetry (:mod:`repro.obs`) answers "how many runs ended in
SDC"; this package answers the paper's questions about *one* run:

* :mod:`repro.forensics.recorder` — a **flight recorder**: a cheap
  ring of block-entry events (pc, icount, cycles) plus periodic
  architectural-state checkpoints, installed in the interpreter's free
  ``branch_profiler`` hook slot so an unobserved run pays nothing;
* :mod:`repro.forensics.divergence` — a **golden-divergence
  analyzer**: replay a fault spec side by side with the golden trace,
  locate the first divergent block entry, and emit a structured
  :class:`Divergence` record (injection site, Section-2 landing
  category, state delta, injection→divergence→stop distances, check
  sites crossed without firing);
* :mod:`repro.forensics.attribution` — **escape attribution**: *why*
  an SDC/HANG escaped the technique, classified against the formal
  conditions of :mod:`repro.formal.conditions`;
* :mod:`repro.forensics.bundle` — the JSONL forensics bundle a
  ``--forensics`` campaign writes next to its journal;
* :mod:`repro.forensics.explain` — the annotated timeline behind
  ``repro explain``.
"""

from repro.forensics.recorder import (BlockEvent, Checkpoint,
                                      FlightRecorder)
from repro.forensics.divergence import (Divergence,
                                        GoldenDivergenceAnalyzer,
                                        RunProbe, classify_spec_landing)
from repro.forensics.attribution import (EscapeAttribution, EscapeReason,
                                         attribute_escape)
from repro.forensics.bundle import (BUNDLE_VERSION, bundle_path_for,
                                    fault_from_json, fault_to_json,
                                    read_bundle, spec_from_json,
                                    spec_to_json,
                                    write_campaign_forensics)
from repro.forensics.explain import explain_spec, render_explanation

__all__ = [
    "BlockEvent", "Checkpoint", "FlightRecorder",
    "Divergence", "GoldenDivergenceAnalyzer", "RunProbe",
    "classify_spec_landing",
    "EscapeAttribution", "EscapeReason", "attribute_escape",
    "BUNDLE_VERSION", "bundle_path_for", "fault_from_json",
    "fault_to_json", "read_bundle", "spec_from_json", "spec_to_json",
    "write_campaign_forensics",
    "explain_spec", "render_explanation",
]
