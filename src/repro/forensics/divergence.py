"""Golden-divergence replay: where did the corrupted run leave the rails?

The analyzer runs a fault spec twice through the *same*
:class:`~repro.faults.campaign.Pipeline` — once fault-free (the golden
reference), once injected — with a full-trace
:class:`~repro.forensics.recorder.FlightRecorder` attached to each, and
compares the two block-entry streams.  Execution is deterministic, so
the streams are identical up to the first effect of the fault; the
first event whose ``(pc, taken)`` differs is the **divergence point**.

The result is one structured :class:`Divergence` record per spec:

* injection site (guest address, dynamic occurrence, fired
  icount/cycles) and the Section-2 landing **category** via
  :mod:`repro.faults.classify`,
* first divergent block entry (cache and guest address under the DBT),
* distances: injection → divergence and injection → detection-or-stop,
  in both instructions and cycles (the Section-6 fail-stop latency),
* the CHECK_SIG sites crossed after injection **without firing** — the
  checks the error sailed through,
* the architectural-state delta at the first checkpoint where golden
  and faulted state disagree (guest registers, FLAGS, signature
  registers).

Replays are bounded by the pipeline's golden step budget, so analyzing
an escape costs two runs of the workload — cheap enough to do for a
sampled handful per campaign (``--forensics``), never for every spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg import build_cfg
from repro.checking import make_technique
from repro.isa.instruction import WORD_SIZE
from repro.isa.opcodes import Kind
from repro.isa.registers import PCP, register_name
from repro.faults.campaign import Outcome, Pipeline, PipelineConfig
from repro.faults.classify import (Category, classify_landing,
                                   classify_offset_fault)
from repro.faults.injector import (CacheFaultSpec, DirectionFault,
                                   FaultSpec, FlagBitFault,
                                   OffsetBitFault, RedirectFault,
                                   RegisterFaultSpec)
from repro.forensics.recorder import FlightRecorder


class RunProbe:
    """Deep-observability attachment for one :class:`Pipeline` run.

    The pipeline binds the probe to the run's CPU just before
    execution and deposits the run's internals (injector, DBT session,
    instrumented image) so the analyzer can interpret the recorded
    trace.  ``Pipeline.run(..., probe=None)`` — the campaign hot path —
    touches none of this.
    """

    def __init__(self, recorder: FlightRecorder):
        self.recorder = recorder
        self.cpu = None
        self.injector = None
        self.dbt = None
        self.instrumented = None
        #: RecoveryReport deposited by the pipeline when --recover ran.
        self.recovery = None

    def bind(self, cpu, injector=None, dbt=None,
             instrumented=None) -> None:
        self.cpu = cpu
        self.injector = injector
        self.dbt = dbt
        self.instrumented = instrumented
        self.recorder.attach(cpu)

    def check_sites(self) -> frozenset[int]:
        """Addresses of CHECK_SIG branch/check instructions in the
        executed image (cache addresses under the DBT, rewritten
        addresses statically)."""
        if self.dbt is not None:
            return frozenset(self.dbt._check_sites)
        if self.instrumented is not None:
            return frozenset(self.instrumented.check_addresses)
        return frozenset()

    def guest_addr_of(self, pc: int) -> int | None:
        """Map a recorded pc back to a guest address (identity for
        native runs; reverse translation map under the DBT)."""
        if self.dbt is not None:
            return self.dbt.reverse_addr_map().get(pc)
        return pc


@dataclass
class StateDelta:
    """First checkpoint where golden and faulted state disagree."""

    icount: int
    cycles: int
    #: (register name, golden value, faulted value)
    regs: list[tuple[str, int, int]] = field(default_factory=list)
    flags: tuple[int, int] | None = None
    #: (signature register name, golden value, faulted value)
    signatures: list[tuple[str, int, int]] = field(default_factory=list)


@dataclass
class Divergence:
    """Structured forensics for one injected run vs. its golden twin."""

    spec_desc: str
    outcome: Outcome
    stop_reason: str
    #: guest address of the injection site (None for data faults)
    injection_site: int | None
    occurrence: int | None
    fired_icount: int | None
    fired_cycles: int | None
    #: Section-2 landing category; None for data/cache-level faults
    category: Category | None
    #: guest thread running when the fault fired (None single-threaded)
    fired_tid: int | None = None
    diverged: bool = False
    divergence_pc: int | None = None         #: recorded (raw) address
    divergence_guest: int | None = None      #: mapped guest address
    divergence_icount: int | None = None
    divergence_cycles: int | None = None
    to_divergence_instructions: int | None = None
    to_divergence_cycles: int | None = None
    to_stop_instructions: int | None = None
    to_stop_cycles: int | None = None
    detection_latency: int | None = None
    detection_latency_cycles: int | None = None
    #: check sites executed after injection whose check did not fire
    silent_checks: list[int] = field(default_factory=list)
    checks_crossed: int = 0
    state_delta: StateDelta | None = None
    golden_events: int = 0
    fault_events: int = 0
    #: RecoveryReport.to_json() when the run executed under --recover
    recovery: dict | None = None

    def to_json(self) -> dict:
        return {
            "spec": self.spec_desc,
            "outcome": self.outcome.value,
            "stop": self.stop_reason,
            "injection_site": self.injection_site,
            "occurrence": self.occurrence,
            "fired_icount": self.fired_icount,
            "fired_cycles": self.fired_cycles,
            "fired_tid": self.fired_tid,
            "category": self.category.value if self.category else None,
            "diverged": self.diverged,
            "divergence_pc": self.divergence_pc,
            "divergence_guest": self.divergence_guest,
            "divergence_icount": self.divergence_icount,
            "divergence_cycles": self.divergence_cycles,
            "to_divergence_instructions": self.to_divergence_instructions,
            "to_divergence_cycles": self.to_divergence_cycles,
            "to_stop_instructions": self.to_stop_instructions,
            "to_stop_cycles": self.to_stop_cycles,
            "detection_latency": self.detection_latency,
            "detection_latency_cycles": self.detection_latency_cycles,
            "silent_checks": list(self.silent_checks),
            "checks_crossed": self.checks_crossed,
            "state_delta": _delta_to_json(self.state_delta),
            "golden_events": self.golden_events,
            "fault_events": self.fault_events,
            "recovery": self.recovery,
        }


def _delta_to_json(delta: StateDelta | None) -> dict | None:
    if delta is None:
        return None
    return {"icount": delta.icount, "cycles": delta.cycles,
            "regs": [list(entry) for entry in delta.regs],
            "flags": list(delta.flags) if delta.flags else None,
            "signatures": [list(entry) for entry in delta.signatures]}


def classify_spec_landing(cfg, program, spec,
                          diverged: bool) -> Category | None:
    """Section-2 category of a fault spec's landing.

    Branch-level specs classify through :mod:`repro.faults.classify`;
    data faults (:class:`RegisterFaultSpec`) and cache-level faults
    (:class:`CacheFaultSpec`) are outside the branch-error taxonomy and
    return None.
    """
    if not isinstance(spec, FaultSpec):
        return None
    instr = program.instruction_at(spec.branch_pc)
    fault = spec.fault
    if isinstance(fault, DirectionFault):
        return Category.A
    if isinstance(fault, FlagBitFault):
        # The flip only matters when it changed the evaluated direction
        # at the struck execution — which the replay reveals.
        return Category.A if diverged else Category.NO_ERROR
    if isinstance(fault, OffsetBitFault):
        return classify_offset_fault(cfg, spec.branch_pc, instr,
                                     fault.bit, taken=True)
    if isinstance(fault, RedirectFault):
        meta = instr.meta
        intended = (instr.branch_target(spec.branch_pc)
                    if meta.is_direct_branch
                    else spec.branch_pc + WORD_SIZE)
        two_way = meta.kind in (Kind.BRANCH_COND, Kind.BRANCH_REG)
        other = spec.branch_pc + WORD_SIZE if two_way else None
        return classify_landing(cfg, spec.branch_pc, fault.target,
                                intended, other)
    return None


class GoldenDivergenceAnalyzer:
    """Replays specs against the golden trace for one (program, config).

    Reuses one :class:`Pipeline` (and therefore one cached golden run)
    across every spec it analyzes; the golden *trace* is recorded once
    and shared too.
    """

    def __init__(self, program, config: PipelineConfig,
                 checkpoint_interval: int = 16):
        self.program = program
        self.config = config
        self.pipeline = Pipeline(program, config)
        self.cfg = build_cfg(program)
        self.checkpoint_interval = checkpoint_interval
        self._signature_regs = self._resolve_signature_regs()
        self._golden_probe: RunProbe | None = None

    def _resolve_signature_regs(self) -> tuple[int, ...]:
        if self.config.technique:
            technique = make_technique(
                self.config.technique,
                update_style=self.config.update_style, cfg=self.cfg)
            return technique.signature_registers
        return (PCP,)

    def _new_probe(self) -> RunProbe:
        return RunProbe(FlightRecorder(
            capacity=None,
            checkpoint_interval=self.checkpoint_interval,
            signature_regs=self._signature_regs))

    def golden_probe(self) -> RunProbe:
        """The recorded golden run (executed once, then cached)."""
        if self._golden_probe is None:
            probe = self._new_probe()
            self.pipeline.run(None, probe=probe)
            self._golden_probe = probe
        return self._golden_probe

    # -- the analysis ------------------------------------------------------

    def analyze(self, spec) -> Divergence:
        """Replay ``spec`` and locate its divergence from the golden."""
        golden = self.golden_probe()
        probe = self._new_probe()
        record = self.pipeline.run(spec, probe=probe)

        fired_icount, fired_cycles = self._fired_at(spec, probe)
        golden_events = golden.recorder.event_list()
        fault_events = probe.recorder.event_list()

        divergence = Divergence(
            spec_desc=spec.describe(),
            outcome=record.outcome,
            stop_reason=record.stop_reason,
            injection_site=self._injection_site(spec, probe),
            occurrence=getattr(spec, "occurrence", None),
            fired_icount=fired_icount,
            fired_cycles=fired_cycles,
            fired_tid=getattr(probe.injector, "fired_tid", None),
            category=None,
            detection_latency=record.detection_latency,
            detection_latency_cycles=record.detection_latency_cycles,
            golden_events=len(golden_events),
            fault_events=len(fault_events))

        if probe.recovery is not None:
            divergence.recovery = probe.recovery.to_json()
        self._locate_divergence(divergence, golden_events, fault_events,
                                probe)
        divergence.category = classify_spec_landing(
            self.cfg, self.program, spec, divergence.diverged)
        self._measure_distances(divergence, probe)
        self._collect_checks(divergence, fault_events, probe, record)
        divergence.state_delta = self._state_delta(golden, probe)
        return divergence

    def _fired_at(self, spec, probe: RunProbe
                  ) -> tuple[int | None, int | None]:
        injector = probe.injector
        if injector is not None:
            return injector.fired_icount, getattr(injector,
                                                  "fired_cycles", None)
        if isinstance(spec, RegisterFaultSpec):
            # scheduled_fault strikes before the icount-th instruction;
            # no cycle stamp is taken on that path.
            if probe.cpu is not None and probe.cpu.icount >= spec.icount:
                return spec.icount, None
        return None, None

    def _injection_site(self, spec, probe: RunProbe) -> int | None:
        if isinstance(spec, FaultSpec):
            return spec.branch_pc
        if isinstance(spec, CacheFaultSpec):
            return probe.guest_addr_of(spec.cache_addr)
        return None

    def _locate_divergence(self, divergence: Divergence, golden_events,
                           fault_events, probe: RunProbe) -> None:
        index = None
        for position, (gold, fault) in enumerate(zip(golden_events,
                                                     fault_events)):
            if gold.key() != fault.key():
                index = position
                break
        if index is None:
            if len(fault_events) == len(golden_events):
                return   # streams identical: no control-flow divergence
            index = min(len(golden_events), len(fault_events))
            if index >= len(fault_events):
                # The faulted run ended early; the divergence "event"
                # is its stop, which has no block entry to report.
                divergence.diverged = True
                return
        event = fault_events[index]
        divergence.diverged = True
        divergence.divergence_pc = event.pc
        divergence.divergence_guest = probe.guest_addr_of(event.pc)
        divergence.divergence_icount = event.icount
        divergence.divergence_cycles = event.cycles

    def _measure_distances(self, divergence: Divergence,
                           probe: RunProbe) -> None:
        fired_i, fired_c = divergence.fired_icount, divergence.fired_cycles
        if fired_i is not None and divergence.divergence_icount is not None:
            divergence.to_divergence_instructions = (
                divergence.divergence_icount - fired_i)
            if fired_c is not None:
                divergence.to_divergence_cycles = (
                    divergence.divergence_cycles - fired_c)
        if fired_i is not None and probe.cpu is not None:
            divergence.to_stop_instructions = probe.cpu.icount - fired_i
            if fired_c is not None:
                divergence.to_stop_cycles = probe.cpu.cycles - fired_c

    def _collect_checks(self, divergence: Divergence, fault_events,
                        probe: RunProbe, record) -> None:
        sites = probe.check_sites()
        if not sites or divergence.fired_icount is None:
            return
        crossed = [event.pc for event in fault_events
                   if event.pc in sites
                   and event.icount > divergence.fired_icount]
        divergence.checks_crossed = len(crossed)
        if record.outcome is Outcome.DETECTED_SIGNATURE and crossed:
            crossed = crossed[:-1]   # the last check is the one that fired
        divergence.silent_checks = crossed

    def _state_delta(self, golden: RunProbe,
                     probe: RunProbe) -> StateDelta | None:
        sig_names = [register_name(r) for r in self._signature_regs]
        for gold, fault in zip(golden.recorder.checkpoints,
                               probe.recorder.checkpoints):
            if (gold.regs == fault.regs and gold.flags == fault.flags
                    and gold.signatures == fault.signatures):
                continue
            delta = StateDelta(icount=fault.icount, cycles=fault.cycles)
            for reg, (gval, fval) in enumerate(zip(gold.regs,
                                                   fault.regs)):
                if gval != fval:
                    delta.regs.append((register_name(reg), gval, fval))
            if gold.flags != fault.flags:
                delta.flags = (gold.flags, fault.flags)
            for name, gval, fval in zip(sig_names, gold.signatures,
                                        fault.signatures):
                if gval != fval:
                    delta.signatures.append((name, gval, fval))
            return delta
        return None
