"""Block-compiling execution backend.

Discovers guest basic blocks at run time and compiles each one, once,
into a specialized Python closure: operand registers, immediates and
memory offsets are bound at compile time, instruction/cycle charges are
batched per block, flag updates are only materialized when a later
instruction (or the world outside the block) can read them, and common
pairs (cmp+Jcc, cmp+CMOVcc) are fused into direct comparisons — the
same superinstruction folds the DBT backend performs on guest machine
code, applied host-side.

Transparency contract: byte-identical architectural state, StopInfo,
icount/cycles, hook and profiler behaviour as the reference
interpreter (``Cpu._run_loop``).  The techniques used to keep it:

* a trampoline that falls back to single-stepping the interpreter for
  anything unusual (uncompilable pc, scheduled fault due inside the
  block, step budget smaller than the block);
* per-block rollback tables so a mid-block memory fault or div-by-zero
  rewinds the batched charges to exactly the interpreter's accounting;
* terminators re-enter the interpreter's own handlers whenever a
  pre-branch hook or branch profiler is installed;
* compiled blocks are invalidated on any store into their words (SMC),
  and an epoch counter makes an in-flight closure bail right after the
  store that invalidated it.
"""

from __future__ import annotations

import time

from repro import obs
from repro.isa.encoding import DecodeError, decode
from repro.isa.flags import (Cond, flags_from_add, flags_from_logic,
                             flags_from_sub)
from repro.isa.opcodes import Op
from repro.machine import syscalls
from repro.machine.cpu import DISPATCH
from repro.machine.faults import FaultKind, StopInfo, StopReason
from repro.machine.memory import PERM_X, AccessFault

_M = 0xFFFFFFFF

#: Cap on block length; long straight-line runs are split.
MAX_BLOCK_INSTRS = 128

#: Process-level cache of compiled code objects keyed by trace content
#: (start/end layout + the raw instruction bytes).  Fault campaigns run
#: the same image hundreds of times in fresh Cpus; the generated source
#: for a trace depends only on its bytes and layout, so the expensive
#: ``compile()`` step is shared across backend instances while the
#: per-Cpu state (memory, registers, backend) is bound at exec time.
_CODE_CACHE: dict = {}
_CODE_CACHE_MAX = 4096

#: word -> decoded Instruction (or None for undecodable words).
_DECODE_CACHE: dict = {}
_DECODE_CACHE_MAX = 65536
_MISS = object()


def clear_code_cache() -> None:
    """Drop the shared code-object and decode caches (test isolation)."""
    _CODE_CACHE.clear()
    _DECODE_CACHE.clear()

_FAULTABLE = frozenset((Op.LD, Op.ST, Op.LDB, Op.STB, Op.PUSH, Op.POP))
_STORE_OPS = frozenset((Op.ST, Op.STB, Op.PUSH))
#: Ops at which execution may stop (or the guest may observe FLAGS), so
#: a pending flag update cannot be elided across them.
_FLAG_BARRIER = _FAULTABLE | frozenset((Op.DIV, Op.MOD, Op.FDIV,
                                        Op.SYSCALL))

#: cmp+Jcc / cmp+CMOVcc fusion: branch on the compared values directly.
#: Signed conditions use the xor-bias trick to order unsigned words.
_DIRECT_CMP = {
    Cond.Z: "({a}) == ({b})", Cond.NZ: "({a}) != ({b})",
    Cond.B: "({a}) < ({b})", Cond.AE: "({a}) >= ({b})",
    Cond.BE: "({a}) <= ({b})", Cond.A: "({a}) > ({b})",
    Cond.L: "(({a}) ^ 2147483648) < (({b}) ^ 2147483648)",
    Cond.GE: "(({a}) ^ 2147483648) >= (({b}) ^ 2147483648)",
    Cond.LE: "(({a}) ^ 2147483648) <= (({b}) ^ 2147483648)",
    Cond.G: "(({a}) ^ 2147483648) > (({b}) ^ 2147483648)",
}

#: Condition over a FLAGS value {f} (ZF=1, SF=2, CF=4, OF=8).
_COND_FLAG_EXPR = {
    Cond.Z: "{f} & 1", Cond.NZ: "not {f} & 1",
    Cond.L: "({f} >> 1 ^ {f} >> 3) & 1",
    Cond.GE: "not ({f} >> 1 ^ {f} >> 3) & 1",
    Cond.LE: "{f} & 1 or ({f} >> 1 ^ {f} >> 3) & 1",
    Cond.G: "not ({f} & 1 or ({f} >> 1 ^ {f} >> 3) & 1)",
    Cond.B: "{f} & 4", Cond.AE: "not {f} & 4",
    Cond.BE: "{f} & 5", Cond.A: "not {f} & 5",
    Cond.S: "{f} & 2", Cond.NS: "not {f} & 2",
    Cond.O: "{f} & 8", Cond.NO: "not {f} & 8",
}


def _slow_terminator(cpu, regs, pc, instr, tc):
    """Run a block terminator through the interpreter's own handler.

    Used whenever a pre-branch hook or branch profiler is installed.
    The batched block charge already counted this instruction, but the
    interpreter calls the hook *before* charging — so rewind, hook,
    re-charge (with the replacement's cost, if the hook substituted an
    instruction), then dispatch.
    """
    cpu.pc = pc
    hook = cpu.pre_branch_hook
    if hook is not None and instr.meta.is_branch:
        cpu.icount -= 1
        cpu.cycles -= tc
        replacement = hook(cpu, pc, instr)
        if replacement is not None:
            instr = replacement
        cpu.icount += 1
        cpu.cycles += instr.meta.cycles
    return DISPATCH[instr.op](cpu, instr, pc, regs)


class CompiledBlock:
    __slots__ = ("start", "n", "fn", "words", "links", "alive", "loop")

    def __init__(self, start, n, fn, words, loop):
        self.start = start
        self.n = n
        self.fn = fn
        self.words = words
        #: successor pc -> CompiledBlock (host-side block chaining)
        self.links = {}
        self.alive = True
        #: self-loop block: fn(cpu, regs, iters) iterates host-side
        self.loop = loop


class BlockCompileBackend:
    """ExecutionBackend that compiles guest basic blocks to closures."""

    name = "block"

    def __init__(self):
        self.cpu = None
        self.blocks: dict[int, CompiledBlock] = {}
        #: unfolded single-basic-block variants, used while a pre-branch
        #: hook or profiler is installed: every branch then runs through
        #: the interpreter's handler (as the hook contract requires), so
        #: folded traces would roll back and re-execute their suffix on
        #: every branch.  Plain blocks keep all straight-line code
        #: compiled and pay the slow path only for the terminator.
        self.hooked_blocks: dict[int, CompiledBlock] = {}
        #: word address -> set of block start addresses covering it
        self.word_map: dict[int, set] = {}
        #: bumped on every invalidation; closures bail when it moves
        self.epoch = 0
        self._lo = 1 << 62
        self._hi = 0
        self.blocks_compiled = 0
        self.block_runs = 0
        self.chain_hits = 0
        self.chain_misses = 0
        self.invalidations = 0
        self.flushes = 0
        self.fused_pairs = 0
        self.compile_seconds = 0.0

    # -- wiring ------------------------------------------------------------

    def install(self, cpu) -> "BlockCompileBackend":
        self.cpu = cpu
        cpu.backend = self
        cpu._backend_write_watch = self._on_guest_write
        cpu.memory.perm_watch = self._on_perms_changed
        return self

    def stats(self) -> dict:
        return {
            "blocks_compiled": self.blocks_compiled,
            "block_runs": self.block_runs,
            "chain_hits": self.chain_hits,
            "chain_misses": self.chain_misses,
            "invalidations": self.invalidations,
            "flushes": self.flushes,
            "fused_pairs": self.fused_pairs,
            "compile_seconds": self.compile_seconds,
        }

    # -- invalidation ------------------------------------------------------

    def _on_guest_write(self, addr: int, length: int) -> None:
        if addr >= self._hi or addr + length <= self._lo:
            return
        dead = None
        word_map = self.word_map
        for waddr in range(addr & ~3, addr + length, 4):
            starts = word_map.get(waddr)
            if starts:
                dead = starts if dead is None else dead | starts
        if dead:
            self._kill(frozenset(dead))

    def _kill(self, starts) -> None:
        word_map = self.word_map
        for start in starts:
            for blocks in (self.blocks, self.hooked_blocks):
                block = blocks.pop(start, None)
                if block is None:
                    continue
                block.alive = False
                for waddr in block.words:
                    s = word_map.get(waddr)
                    if s is not None:
                        s.discard(start)
                        if not s:
                            del word_map[waddr]
        # Chained successors bypass the dict lookup, so drop every link.
        for blocks in (self.blocks, self.hooked_blocks):
            for block in blocks.values():
                if block.links:
                    block.links.clear()
        self.epoch += 1
        self.invalidations += len(starts)

    def _on_perms_changed(self, start: int, length: int) -> None:
        # Permission changes can grant or revoke X on compiled pages;
        # rare enough that a full flush is the simple safe answer.
        if self.blocks:
            self.flush()

    def flush(self) -> None:
        for blocks in (self.blocks, self.hooked_blocks):
            for block in blocks.values():
                block.alive = False
                block.links.clear()
            blocks.clear()
        self.word_map.clear()
        self._lo = 1 << 62
        self._hi = 0
        self.epoch += 1
        self.flushes += 1

    # -- execution ---------------------------------------------------------

    def run(self, cpu, max_steps: int, max_cycles: int | None) -> StopInfo:
        if max_cycles is not None:
            # Cycle budgets need a per-instruction check; the reference
            # loop is the exact semantics.  No campaign path uses this.
            return cpu._run_loop(max_steps, max_cycles)
        registry = obs.get_registry()
        if registry is None:
            return self._trampoline(cpu, max_steps)
        base = (self.blocks_compiled, self.block_runs, self.chain_hits,
                self.chain_misses, self.invalidations, self.flushes,
                self.fused_pairs, self.compile_seconds)
        try:
            return self._trampoline(cpu, max_steps)
        finally:
            self._flush_obs(registry, base)

    def _flush_obs(self, registry, base) -> None:
        deltas = (
            ("exec_blocks_compiled_total", "guest basic blocks compiled",
             self.blocks_compiled - base[0]),
            ("exec_block_runs_total", "compiled closures executed",
             self.block_runs - base[1]),
            ("exec_chain_hits_total", "block-to-block chain hits",
             self.chain_hits - base[2]),
            ("exec_chain_misses_total", "block lookups outside the chain",
             self.chain_misses - base[3]),
            ("exec_block_invalidations_total",
             "compiled blocks invalidated by guest stores",
             self.invalidations - base[4]),
            ("exec_block_flushes_total", "full block-cache flushes",
             self.flushes - base[5]),
            ("exec_fused_pairs_total", "superinstruction fusions compiled",
             self.fused_pairs - base[6]),
        )
        for name, help_text, delta in deltas:
            if delta:
                registry.counter(name, help=help_text).inc(delta)
        dt = self.compile_seconds - base[7]
        if dt:
            registry.counter("exec_compile_seconds_total",
                             help="wall time spent compiling blocks").inc(dt)

    def _trampoline(self, cpu, max_steps: int) -> StopInfo:
        run_loop = cpu._run_loop
        regs = cpu.regs
        fuel = max_steps
        prev = None
        mode = None
        blocks = self.blocks
        hits = misses = runs = 0
        try:
            while True:
                if fuel <= 0:
                    return StopInfo(StopReason.STEP_LIMIT, cpu.pc)
                # Hooks observe every branch, so folded traces would
                # bail and roll back constantly; switch to the unfolded
                # variants while one is installed (hooks may uninstall
                # themselves mid-run, so re-check every dispatch).
                hooked = (cpu.pre_branch_hook is not None
                          or cpu.branch_profiler is not None)
                if hooked is not mode:
                    mode = hooked
                    blocks = self.hooked_blocks if hooked else self.blocks
                    prev = None
                pc = cpu.pc
                block = prev.links.get(pc) if prev is not None else None
                if block is not None:
                    hits += 1
                else:
                    block = blocks.get(pc)
                    if block is None:
                        block = self._compile(pc, fold=not hooked)
                    if block is not None and prev is not None:
                        prev.links[pc] = block
                        misses += 1
                if block is None:
                    # Uncompilable pc (misaligned, non-X, undecodable):
                    # one interpreter step produces the exact outcome.
                    ic0 = cpu.icount
                    stop = run_loop(1, None)
                    fuel -= cpu.icount - ic0
                    if stop.reason is not StopReason.STEP_LIMIT:
                        return stop
                    prev = None
                    continue
                n = block.n
                sf = cpu.scheduled_fault
                if sf is not None and cpu.icount + n > sf[0]:
                    # The scheduled fault lands inside this block:
                    # single-step so it fires at the exact icount.
                    ic0 = cpu.icount
                    stop = run_loop(1, None)
                    fuel -= cpu.icount - ic0
                    if stop.reason is not StopReason.STEP_LIMIT:
                        return stop
                    prev = None
                    continue
                if fuel < n:
                    return run_loop(fuel, None)
                ic0 = cpu.icount
                if block.loop:
                    # Self-loop block: iterate inside the closure, up
                    # to the step budget and the scheduled-fault line.
                    iters = fuel // n
                    if sf is not None:
                        allowed = (sf[0] - ic0) // n
                        if allowed < iters:
                            iters = allowed
                    stop = block.fn(cpu, regs, iters)
                else:
                    stop = block.fn(cpu, regs)
                runs += 1
                fuel -= cpu.icount - ic0
                if stop is not None:
                    return stop
                prev = block if block.alive else None
        except AccessFault as fault:
            return StopInfo(StopReason.FAULT, cpu.pc,
                            fault=fault.kind, fault_addr=fault.addr)
        finally:
            self.chain_hits += hits
            self.chain_misses += misses
            self.block_runs += runs

    # -- trace discovery ---------------------------------------------------

    def _compile(self, pc: int, fold: bool = True) -> CompiledBlock | None:
        """Decode a trace starting at ``pc`` and compile it.

        The walk follows direct control flow the way the paper's DBT
        lays out traces: unconditional jumps are folded, conditional
        branches continue along the predicted direction (backward =
        taken, forward = not-taken) with a compiled side exit for the
        other way, and a path that cycles back to the trace head
        becomes a host-side loop closure.  With ``fold=False`` the walk
        stops at the first terminator instead (the single-basic-block
        variants used while a branch hook is installed).
        """
        mem = self.cpu.memory
        size = mem.size
        if pc & 3 or not 0 <= pc < size:
            return None
        perms = mem.perms
        data = mem.data
        if not perms[pc >> 12] & PERM_X:
            return None
        t0 = time.perf_counter()
        instrs = []
        pcs = []
        seen = set()
        addr = pc
        loop = False
        while len(instrs) < MAX_BLOCK_INSTRS:
            if addr in seen:
                loop = addr == pc
                break
            if (addr & 3 or addr + 4 > size
                    or not perms[addr >> 12] & PERM_X):
                break
            word = int.from_bytes(data[addr:addr + 4], "little")
            instr = _DECODE_CACHE.get(word, _MISS)
            if instr is _MISS:
                try:
                    instr = decode(word)
                except DecodeError:
                    instr = None
                if len(_DECODE_CACHE) < _DECODE_CACHE_MAX:
                    _DECODE_CACHE[word] = instr
            if instr is None:
                break
            seen.add(addr)
            instrs.append(instr)
            pcs.append(addr)
            meta = instr.meta
            op = instr.op
            if meta.is_block_terminator:
                if not fold:
                    break
                if op is Op.JMP:
                    addr = addr + 4 + instr.imm * 4
                    continue
                if meta.cond is not None or op in (Op.JRZ, Op.JRNZ):
                    if instr.imm < 0:
                        addr = addr + 4 + instr.imm * 4
                    else:
                        addr += 4
                    continue
                break  # call/indirect/ret/trap/halt end the trace
            if op is Op.SYSCALL:
                # SYSCALL ends the trace: it can halt, fault
                # (print-str) or read the cycle counter, so the
                # batched charge must be exact through it.
                break
            addr += 4
        if not instrs:
            return None
        block = _compile_block(self, pc, instrs, pcs, addr, loop, mem)
        (self.blocks if fold else self.hooked_blocks)[pc] = block
        word_map = self.word_map
        for waddr in block.words:
            word_map.setdefault(waddr, set()).add(pc)
        lo = min(block.words)
        hi = max(block.words) + 4
        if lo < self._lo:
            self._lo = lo
        if hi > self._hi:
            self._hi = hi
        self.blocks_compiled += 1
        self.compile_seconds += time.perf_counter() - t0
        return block


# -- code generation ----------------------------------------------------------


def _E(v) -> str:
    return str(v) if isinstance(v, int) else v


def _fl_logic(r) -> str:
    r = _E(r)
    return f"(({r}) == 0) | (({r}) >> 30 & 2)"


def _fl_sub(a, b, r) -> str:
    a, b, r = _E(a), _E(b), _E(r)
    return (f"(({r}) == 0) | (({r}) >> 30 & 2)"
            f" | ((({a}) < ({b})) << 2)"
            f" | (((({a}) ^ ({b})) & (({a}) ^ ({r}))) >> 28 & 8)")


def _fl_add(a, b, r) -> str:
    a, b, r = _E(a), _E(b), _E(r)
    return (f"(({r}) == 0) | (({r}) >> 30 & 2)"
            f" | ((({a}) + ({b}) > 4294967295) << 2)"
            f" | ((~(({a}) ^ ({b})) & (({a}) ^ ({r}))) >> 28 & 8)")


_LOGIC3 = {Op.AND: "&", Op.OR: "|", Op.XOR: "^"}
_LOGICI = {Op.ANDI: "&", Op.ORI: "|", Op.XORI: "^"}
_LEA3 = {Op.LEA3: "+", Op.LSUB: "-", Op.FADD: "+", Op.FSUB: "-",
         Op.FMUL: "*"}


def _compile_block(backend, start, instrs, pcs, end_addr, loop,
                   mem) -> CompiledBlock:
    """Translate one decoded trace into a Python closure.

    ``pcs[k]`` is the guest pc of ``instrs[k]`` (non-contiguous across
    folded jumps), ``end_addr`` the pc after the last instruction if it
    does not branch, ``loop`` whether the trace's predicted path cycles
    back to ``start``.
    """
    key = (start, end_addr, loop, mem.size, tuple(pcs),
           b"".join(bytes(mem.data[p:p + 4]) for p in pcs))
    hit = _CODE_CACHE.get(key)
    if hit is not None:
        code, env_extra, fused, final_loop, cs = hit
        backend.fused_pairs += fused
        return _bind(backend, mem, code, env_extra, start, instrs, pcs,
                     cs, final_loop)
    n = len(instrs)
    cyc = [i.meta.cycles for i in instrs]
    # csuf[k] = cycles charged for instructions after index k-1; the
    # rollback for a stop at instruction k removes csuf[k+1].
    csuf = [0] * (n + 1)
    for k in range(n - 1, -1, -1):
        csuf[k] = csuf[k + 1] + cyc[k]
    ctot = csuf[0]

    # Flag liveness: a flag write is dead iff a later instruction
    # overwrites FLAGS before anything can read them — where "read"
    # includes conditional ops, any op that can stop the run (fault,
    # div-by-zero, syscall), the terminator, and the block's end.
    live = [True] * n
    for k in range(n):
        if not instrs[k].meta.sets_flags:
            continue
        for j in range(k + 1, n):
            m = instrs[j].meta
            if (m.cond is not None or instrs[j].op in _FLAG_BARRIER
                    or m.is_block_terminator):
                break
            if m.sets_flags:
                live[k] = False
                break

    last = instrs[-1]
    has_term = last.meta.is_block_terminator or last.op == Op.SYSCALL
    body_instrs = instrs[:-1] if has_term else instrs
    has_fault = any(i.op in _FAULTABLE for i in body_instrs)
    has_store = any(i.op in _STORE_OPS for i in body_instrs)

    body: list[str] = []
    term: list[str] = []
    cache: dict[int, object] = {}   # reg -> const int | local name
    state = {"tmp": 0, "flags_src": "cpu.flags", "cmp": None,
             "truncated": False, "fused": 0}

    def newtmp() -> str:
        name = f"_t{state['tmp']}"
        state["tmp"] += 1
        return name

    def fetch(r):
        v = cache.get(r)
        if v is None:
            v = newtmp()
            body.append(f"{v} = regs[{r}]")
            cache[r] = v
        return v

    def peek(r) -> str:
        v = cache.get(r)
        return f"regs[{r}]" if v is None else _E(v)

    def store(r, val):
        if isinstance(val, int) or (val.startswith("_t")
                                    and val[2:].isdigit()):
            body.append(f"regs[{r}] = {_E(val)}")
            cache[r] = val
            return val
        name = newtmp()
        body.append(f"{name} = {val}")
        body.append(f"regs[{r}] = {name}")
        cache[r] = name
        return name

    def set_flags(k, expr) -> None:
        if not live[k]:
            return
        if isinstance(expr, int):
            body.append(f"cpu.flags = {expr}")
            state["flags_src"] = str(expr)
        else:
            body.append(f"_f = {expr}")
            body.append("cpu.flags = _f")
            state["flags_src"] = "_f"

    def bail(k, lines, stop_charge_self: bool) -> None:
        # Rewind the batched charges for everything after instruction k
        # (the instruction itself stays charged, as in the interpreter).
        if n - 1 - k:
            lines.append(f"cpu.icount -= {n - 1 - k}")
        if csuf[k + 1]:
            lines.append(f"cpu.cycles -= {csuf[k + 1]}")

    def cond_expr(cond) -> str:
        cmp = state["cmp"]
        if cmp is not None and cond in _DIRECT_CMP:
            state["fused"] += 1
            return _DIRECT_CMP[cond].format(a=_E(cmp[0]), b=_E(cmp[1]))
        return _COND_FLAG_EXPR[cond].format(f=state["flags_src"])

    def logic_result(k, rd, val) -> None:
        if isinstance(val, int):
            store(rd, val)
            set_flags(k, flags_from_logic(val))
        else:
            r = store(rd, val)
            set_flags(k, _fl_logic(r))

    def addsub(k, rd, a, b, sign, flags: bool) -> None:
        if isinstance(a, int) and isinstance(b, int):
            r = (a + b if sign == "+" else a - b) & _M
            store(rd, r)
            if flags:
                set_flags(k, flags_from_add(a, b) if sign == "+"
                          else flags_from_sub(a, b))
        else:
            r = store(rd, f"(({_E(a)}) {sign} ({_E(b)})) & 4294967295")
            if flags and live[k]:
                fl = _fl_add if sign == "+" else _fl_sub
                set_flags(k, fl(a, b, r))

    def div_like(k, ins, pyop, flags: bool) -> None:
        pck = pcs[k]
        b = fetch(ins.rt)
        a = fetch(ins.rs)
        stop = (f"return _SI(_RF, {pck}, fault=_DBZ, fault_addr={pck})")
        if isinstance(b, int):
            if b == 0:
                bail(k, body, True)
                body.append(f"cpu.pc = {pck}")
                body.append(stop)
                state["truncated"] = True
                return
        else:
            body.append(f"if not {b}:")
            sub = []
            bail(k, sub, True)
            sub.append(f"cpu.pc = {pck}")
            sub.append(stop)
            body.extend("    " + ln for ln in sub)
        if isinstance(a, int) and isinstance(b, int):
            val = a // b if pyop == "//" else a % b
        else:
            val = f"({_E(a)}) {pyop} ({_E(b)})"
        if flags:
            logic_result(k, ins.rd, val)
        else:
            store(ins.rd, val)

    env_extra: dict[str, object] = {}

    def mid_branch(k, ins) -> None:
        # A direct branch folded into the trace.  The predicted
        # direction (backward = taken, forward = not-taken) continues
        # inline; the other direction is a side exit that rewinds the
        # batched charges for the un-executed suffix.  Hook or profiler
        # installed -> rewind and re-enter the interpreter's handler.
        op = ins.op
        pck = pcs[k]
        body.append("if cpu.pre_branch_hook is not None"
                    " or cpu.branch_profiler is not None:")
        sub: list[str] = []
        bail(k, sub, True)
        sub.append(f"return _slow(cpu, regs, {pck}, _TI{k},"
                   f" {ins.meta.cycles})")
        body.extend("    " + ln for ln in sub)
        env_extra[f"_TI{k}"] = ins
        if op is Op.JMP:
            body.append("cpu.cycles += 1")
            return
        if ins.meta.cond is not None:
            taken = cond_expr(ins.meta.cond)
        else:
            test = "==" if op is Op.JRZ else "!="
            taken = f"({peek(ins.rd)}) {test} 0"
        if ins.imm < 0:  # predicted taken; side exit = fall through
            body.append(f"if not ({taken}):")
            sub = []
            bail(k, sub, True)
            sub.append(f"cpu.pc = {pck + 4}")
            sub.append("return None")
            body.extend("    " + ln for ln in sub)
            body.append("cpu.cycles += 1")
        else:  # predicted not-taken; side exit = taken
            body.append(f"if {taken}:")
            sub = ["cpu.cycles += 1"]
            bail(k, sub, True)
            sub.append(f"cpu.pc = {pck + 4 + ins.imm * 4}")
            sub.append("return None")
            body.extend("    " + ln for ln in sub)

    for k, ins in enumerate(body_instrs):
        op = ins.op
        meta = ins.meta
        if meta.is_block_terminator:
            mid_branch(k, ins)
            continue  # branches read flags, never write them
        if op is Op.NOP:
            continue
        elif op is Op.MOV:
            v = cache.get(ins.rs)
            store(ins.rd, v if v is not None else fetch(ins.rs))
        elif op is Op.MOVI:
            store(ins.rd, ins.imm & _M)
        elif op is Op.MOVHI:
            store(ins.rd, (ins.imm & 0xFFFF) << 16)
        elif op is Op.MOVLO:
            a = fetch(ins.rd)
            lo = ins.imm & 0xFFFF
            if isinstance(a, int):
                store(ins.rd, (a & 0xFFFF0000) | lo)
            else:
                store(ins.rd, f"(({a}) & 4294901760) | {lo}")
        elif op is Op.LEA:
            a = fetch(ins.rs)
            if isinstance(a, int):
                store(ins.rd, (a + ins.imm) & _M)
            else:
                store(ins.rd, f"(({a}) + {ins.imm}) & 4294967295")
        elif op in _LEA3:
            a = fetch(ins.rs)
            b = fetch(ins.rt)
            sign = _LEA3[op]
            if isinstance(a, int) and isinstance(b, int):
                store(ins.rd, (a + b if sign == "+" else
                               a - b if sign == "-" else a * b) & _M)
            else:
                store(ins.rd,
                      f"(({_E(a)}) {sign} ({_E(b)})) & 4294967295")
        elif op is Op.ADD:
            addsub(k, ins.rd, fetch(ins.rs), fetch(ins.rt), "+", True)
        elif op is Op.SUB:
            addsub(k, ins.rd, fetch(ins.rs), fetch(ins.rt), "-", True)
        elif op is Op.ADDI:
            addsub(k, ins.rd, fetch(ins.rs), ins.imm & _M, "+", True)
        elif op is Op.SUBI:
            addsub(k, ins.rd, fetch(ins.rs), ins.imm & _M, "-", True)
        elif op in _LOGIC3 or op in _LOGICI:
            a = fetch(ins.rs)
            if op in _LOGIC3:
                b, sign = fetch(ins.rt), _LOGIC3[op]
            else:
                b, sign = ins.imm & _M, _LOGICI[op]
            if isinstance(a, int) and isinstance(b, int):
                val = a & b if sign == "&" else (a | b if sign == "|"
                                                 else a ^ b)
            else:
                val = f"({_E(a)}) {sign} ({_E(b)})"
            logic_result(k, ins.rd, val)
        elif op in (Op.MUL, Op.MULI):
            a = fetch(ins.rs)
            b = fetch(ins.rt) if op is Op.MUL else ins.imm
            if isinstance(a, int) and isinstance(b, int):
                val = (a * b) & _M
            else:
                val = f"(({_E(a)}) * ({_E(b)})) & 4294967295"
            logic_result(k, ins.rd, val)
        elif op in (Op.SHL, Op.SHLI, Op.SHR, Op.SHRI):
            a = fetch(ins.rs)
            if op in (Op.SHL, Op.SHR):
                b = fetch(ins.rt)
                s = b & 31 if isinstance(b, int) else f"({b}) & 31"
            else:
                s = ins.imm & 31
            left = op in (Op.SHL, Op.SHLI)
            if isinstance(a, int) and isinstance(s, int):
                val = ((a << s) & _M) if left else (a >> s)
            elif left:
                val = f"(({_E(a)}) << ({_E(s)})) & 4294967295"
            else:
                val = f"({_E(a)}) >> ({_E(s)})"
            logic_result(k, ins.rd, val)
        elif op is Op.SAR:
            a = fetch(ins.rs)
            b = fetch(ins.rt)
            s = b & 31 if isinstance(b, int) else f"({b}) & 31"
            if isinstance(a, int) and isinstance(s, int):
                sa = a - 0x100000000 if a & 0x80000000 else a
                val = (sa >> s) & _M
            else:
                val = (f"((({_E(a)}) - 4294967296 if ({_E(a)}) &"
                       f" 2147483648 else ({_E(a)})) >> ({_E(s)}))"
                       f" & 4294967295")
            logic_result(k, ins.rd, val)
        elif op is Op.NEG:
            a = fetch(ins.rs)
            if isinstance(a, int):
                r = (-a) & _M
                store(ins.rd, r)
                set_flags(k, flags_from_sub(0, a))
            else:
                r = store(ins.rd, f"(-({a})) & 4294967295")
                if live[k]:
                    set_flags(k, f"(({r}) == 0) | (({r}) >> 30 & 2)"
                              f" | ((({a}) != 0) << 2)"
                              f" | ((({a}) & ({r})) >> 28 & 8)")
        elif op is Op.NOT:
            a = fetch(ins.rs)
            val = (a ^ _M) if isinstance(a, int) else \
                f"({a}) ^ 4294967295"
            logic_result(k, ins.rd, val)
        elif op in (Op.CMP, Op.CMPI):
            a = fetch(ins.rs)
            b = fetch(ins.rt) if op is Op.CMP else ins.imm & _M
            state["cmp"] = (a, b)
            if live[k]:
                if isinstance(a, int) and isinstance(b, int):
                    set_flags(k, flags_from_sub(a, b))
                else:
                    t = newtmp()
                    body.append(
                        f"{t} = (({_E(a)}) - ({_E(b)})) & 4294967295")
                    set_flags(k, _fl_sub(a, b, t))
            continue  # keep state["cmp"]: CMP is the fusion anchor
        elif op is Op.TEST:
            a = fetch(ins.rs)
            b = fetch(ins.rt)
            if live[k]:
                if isinstance(a, int) and isinstance(b, int):
                    set_flags(k, flags_from_logic(a & b))
                else:
                    t = newtmp()
                    body.append(f"{t} = ({_E(a)}) & ({_E(b)})")
                    set_flags(k, _fl_logic(t))
        elif op in (Op.DIV, Op.MOD):
            div_like(k, ins, "//" if op is Op.DIV else "%", True)
        elif op is Op.FDIV:
            div_like(k, ins, "//", False)
        elif op is Op.LD or op is Op.LDB:
            a = fetch(ins.rs)
            if isinstance(a, int):
                addr = str((a + ins.imm) & _M)
            else:
                addr = f"(({a}) + {ins.imm}) & 4294967295"
            body.append(f"_fk = {k}")
            body.append(f"_a = {addr}")
            # Inline the aligned/readable fast path; anything else
            # (misaligned, unmapped, no-R) falls back to the memory
            # object, which raises the exact AccessFault.
            if op is Op.LD:
                val = (f"_ifb(_d[_a:_a + 4], 'little')"
                       f" if not _a & 3 and _a < {mem.size}"
                       f" and _p[_a >> 12] & 1 else _lw(_a)")
            else:
                val = (f"_d[_a] if _a < {mem.size}"
                       f" and _p[_a >> 12] & 1 else _lb(_a)")
            store(ins.rd, val)
        elif op is Op.ST or op is Op.STB:
            a = fetch(ins.rs)
            val = peek(ins.rd)
            if isinstance(a, int):
                addr = str((a + ins.imm) & _M)
            else:
                addr = f"(({a}) + {ins.imm}) & 4294967295"
            body.append(f"_fk = {k}")
            call = "_sw" if op is Op.ST else "_sb"
            body.append(f"{call}({addr}, {val})")
        elif op is Op.PUSH:
            sp = fetch(15)
            val = peek(ins.rd)
            body.append(f"_fk = {k}")
            if isinstance(sp, int):
                nsp = (sp - 4) & _M
                body.append(f"_sw({nsp}, {val})")
                store(15, nsp)
            else:
                t = newtmp()
                body.append(f"{t} = (({sp}) - 4) & 4294967295")
                body.append(f"_sw({t}, {val})")
                store(15, t)
        elif op is Op.POP:
            sp = fetch(15)
            body.append(f"_fk = {k}")
            store(ins.rd, f"_lw({_E(sp)})")
            if isinstance(sp, int):
                store(15, (sp + 4) & _M)
            else:
                store(15, f"(({sp}) + 4) & 4294967295")
        elif meta.cond is not None:  # CMOVcc
            body.append(f"if {cond_expr(meta.cond)}:")
            body.append(f"    regs[{ins.rd}] = {peek(ins.rs)}")
            cache.pop(ins.rd, None)
        else:  # pragma: no cover - every decodable body op is handled
            raise AssertionError(f"unhandled body op {op!r}")
        if op in _STORE_OPS:
            # The store may have invalidated compiled code (this block
            # included): bail to the trampoline, which recompiles.
            body.append("if _bk.epoch != _e0:")
            sub: list[str] = []
            bail(k, sub, True)
            sub.append(f"cpu.pc = {pcs[k] + 4}")
            sub.append("return None")
            body.extend("    " + ln for ln in sub)
        if state["truncated"]:
            break
        if meta.sets_flags:
            state["cmp"] = None

    # A trace whose predicted path cycles back to its start is a loop:
    # the closure iterates host-side so a tight guest loop costs one
    # trampoline entry, not one per iteration.
    loop = loop and has_term and not state["truncated"]
    if has_term and not state["truncated"]:
        _emit_terminator(term, last, pcs[-1], start, peek, cond_expr,
                         loop)
    elif not state["truncated"]:
        term.append(f"cpu.pc = {end_addr}")
        term.append("return None")

    inner = [f"cpu.icount += {n}", f"cpu.cycles += {ctot}"]
    if has_fault:
        inner.append("try:")
        inner.extend("    " + ln for ln in body)
        inner.append("except _AF:")
        inner.append(f"    cpu.icount -= {n - 1} - _fk")
        inner.append("    cpu.cycles -= _CS[_fk]")
        inner.append("    cpu.pc = _PCS[_fk]")
        inner.append("    raise")
    else:
        inner.extend(body)
    inner.extend(term)

    args = "cpu, regs, _it" if loop else "cpu, regs"
    lines = [f"def _fn({args}):"]
    if has_store:
        lines.append("    _e0 = _bk.epoch")
    if loop:
        lines.append("    while True:")
        lines.extend("        " + ln for ln in inner)
    else:
        lines.extend("    " + ln for ln in inner)
    src = "\n".join(lines)
    code = compile(src, f"<block@{start:#x}>", "exec")
    fused = state["fused"]
    backend.fused_pairs += fused
    cs = tuple(csuf[1:])
    if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
        _CODE_CACHE.clear()
    _CODE_CACHE[key] = (code, env_extra, fused, loop, cs)
    return _bind(backend, mem, code, env_extra, start, instrs, pcs, cs,
                 loop)


def _bind(backend, mem, code, env_extra, start, instrs, pcs, cs,
          loop) -> CompiledBlock:
    """Exec a (possibly cached) block code object against one Cpu's
    memory/backend bindings."""
    env = {
        "_AF": AccessFault, "_SI": StopInfo, "_RF": StopReason.FAULT,
        "_RH": StopReason.HALTED, "_RT": StopReason.TRAP,
        "_DBZ": FaultKind.DIV_BY_ZERO,
        "_lw": mem.load_word, "_sw": mem.store_word,
        "_lb": mem.load_byte, "_sb": mem.store_byte,
        "_d": mem.data, "_p": mem.perms, "_ifb": int.from_bytes,
        "_hsys": syscalls.handle_syscall, "_slow": _slow_terminator,
        "_bk": backend, "_CS": cs, "_TI": instrs[-1],
        "_PCS": tuple(pcs),
    }
    env.update(env_extra)
    exec(code, env)  # noqa: S102
    return CompiledBlock(start, len(instrs), env["_fn"], tuple(pcs),
                         loop)


def _emit_terminator(term, ins, pc_t, start, peek, cond_expr,
                     loop) -> None:
    """Emit the trace's final instruction (control flow / halt / sys)."""
    op = ins.op
    meta = ins.meta
    nxt = pc_t + 4
    tc = meta.cycles
    # Direct branches run the branch profiler; every branch runs the
    # pre-branch hook.  Either installed -> interpreter handler.
    if op in (Op.JMP, Op.JRZ, Op.JRNZ, Op.CALL) or meta.cond is not None:
        term.append("if cpu.pre_branch_hook is not None"
                    " or cpu.branch_profiler is not None:")
        term.append(f"    return _slow(cpu, regs, {pc_t}, _TI, {tc})")
    elif op in (Op.JMPR, Op.CALLR, Op.RET, Op.TRAP):
        term.append("if cpu.pre_branch_hook is not None:")
        term.append(f"    return _slow(cpu, regs, {pc_t}, _TI, {tc})")
    if op is Op.JMP:
        term.append("cpu.cycles += 1")
        if loop:
            term.append("_it -= 1")
            term.append("if _it:")
            term.append("    continue")
        term.append(f"cpu.pc = {nxt + ins.imm * 4}")
        term.append("return None")
    elif meta.cond is not None or op in (Op.JRZ, Op.JRNZ):
        if meta.cond is not None:  # Jcc
            taken = cond_expr(meta.cond)
        else:
            test = "==" if op is Op.JRZ else "!="
            taken = f"({peek(ins.rd)}) {test} 0"
        taken_tgt = nxt + ins.imm * 4
        loop_taken = loop and taken_tgt == start
        term.append(f"if {taken}:")
        term.append("    cpu.cycles += 1")
        if loop_taken:
            term.append("    _it -= 1")
            term.append("    if _it:")
            term.append("        continue")
        term.append(f"    cpu.pc = {taken_tgt}")
        term.append("    return None")
        if loop and not loop_taken:  # backedge is the fall-through
            term.append("_it -= 1")
            term.append("if _it:")
            term.append("    continue")
        term.append(f"cpu.pc = {nxt}")
        term.append("return None")
    elif op in (Op.CALL, Op.CALLR):
        term.append(f"cpu.pc = {pc_t}")  # faulting pc if the push faults
        term.append(f"_sp = (({peek(15)}) - 4) & 4294967295")
        term.append(f"_sw(_sp, {nxt})")
        term.append("regs[15] = _sp")
        term.append("cpu.cycles += 1")
        if op is Op.CALL:
            term.append(f"cpu.pc = {nxt + ins.imm * 4}")
        else:
            # reads rd *after* the sp update, like the interpreter
            term.append(f"cpu.pc = regs[{ins.rd}]")
        term.append("return None")
    elif op is Op.RET:
        term.append(f"cpu.pc = {pc_t}")
        term.append(f"_sp = {peek(15)}")
        term.append("_ra = _lw(_sp)")
        term.append("regs[15] = (_sp + 4) & 4294967295")
        term.append("cpu.cycles += 1")
        term.append("cpu.pc = _ra")
        term.append("return None")
    elif op is Op.JMPR:
        term.append("cpu.cycles += 1")
        term.append(f"cpu.pc = {peek(ins.rd)}")
        term.append("return None")
    elif op is Op.HALT:
        term.append(f"cpu.pc = {nxt}")
        term.append(f"return _SI(_RH, {pc_t}, exit_code=0)")
    elif op is Op.TRAP:
        term.append(f"cpu.pc = {nxt}")
        term.append(f"return _SI(_RT, {pc_t}, trap_no={ins.imm})")
    elif op is Op.SYSCALL:
        term.append(f"cpu.pc = {pc_t}")  # visible to the handler
        term.append(f"if _hsys(cpu, {ins.imm}):")
        term.append(f"    cpu.pc = {nxt}")
        term.append(f"    return _SI(_RH, {pc_t},"
                    f" exit_code=cpu.exit_code)")
        term.append(f"cpu.pc = {nxt}")
        term.append("return None")
    else:  # pragma: no cover
        raise AssertionError(f"unhandled terminator {op!r}")
