"""Guest hot-block profiler: per-block icount/cycle attribution.

Answers "where does this workload spend its guest cycles?" without
touching the interpreter hot loop: the profiler rides the existing
``cpu.branch_profiler`` slot (free when unused, one ``is None`` check
per *branch*, never per instruction) and attributes the instruction
and cycle deltas since the previous branch to the block that the
branch terminates.

Attribution model
-----------------
The interpreter charges ``icount``/``cycles`` *before* dispatching a
handler, and branch handlers call ``branch_profiler.record`` before
adding the taken-branch penalty.  So at ``record(pc, ...)`` time the
counters cover everything up to and including the branch at ``pc`` —
the delta since the last ``record`` is exactly the dynamic trace that
ended with this branch, and it is credited to ``pc``.  The block
backend batches per-block charges but re-enters the interpreter's own
branch handlers whenever a profiler is installed, so the deltas (and
therefore the attribution) are identical on both backends.

Totals are **exact**: every instruction lands in exactly one delta
(:meth:`HotBlockProfiler.finish` attributes the tail between the last
branch and the stop), so the per-block sums equal the run's final
``cpu.icount``/``cpu.cycles`` to the instruction — the regression
tests assert equality with an uninstrumented run, not approximation.

Traces that fall through one or more branch-target leaders before
branching are credited, whole, to the block containing the
terminating branch — attribution granularity is the dynamic
branch-to-branch trace, mapped onto the static CFG for reporting.

DBT runs record *code-cache* addresses (the guest program executes
translated); :meth:`HotBlockProfiler.mapped` folds them back to guest
addresses via ``Dbt.reverse_addr_map()``, with translator-emitted
words (stubs, signature checks) pooled under an ``(outside text)``
bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.builder import build_cfg
from repro.isa.disassembler import format_instruction
from repro.isa.program import Program
from repro.machine.cpu import TAKEN_BRANCH_PENALTY, Cpu


@dataclass
class BlockProfile:
    """Aggregated cost of one static basic block (reporting form)."""

    start: int
    end: int
    icount: int = 0
    cycles: int = 0
    visits: int = 0
    symbol: str | None = None
    #: (pc, text) disassembly lines, filled for program-resident blocks
    listing: list = field(default_factory=list)


class HotBlockProfiler:
    """Accumulates per-block guest cost during a run.

    Chain discipline (shared with the forensics flight recorder): the
    profiler saves whatever already occupies ``cpu.branch_profiler``
    on :meth:`attach`, forwards every ``record`` to it, and restores
    it on :meth:`finish` — a branch-statistics profiler and the
    hot-block profiler can ride the same run.
    """

    def __init__(self) -> None:
        #: attribution key (branch pc, or stop pc for the tail) ->
        #: [icount, cycles, visits]
        self.samples: dict[int, list] = {}
        self.total_icount = 0
        self.total_cycles = 0
        self._cpu: Cpu | None = None
        self._chained = None
        self._last_icount = 0
        self._last_cycles = 0
        self._base_icount = 0
        self._base_cycles = 0

    def attach(self, cpu: Cpu) -> None:
        if self._cpu is not None:
            raise RuntimeError("profiler already attached")
        self._cpu = cpu
        self._chained = cpu.branch_profiler
        cpu.branch_profiler = self
        self._last_icount = self._base_icount = cpu.icount
        self._last_cycles = self._base_cycles = cpu.cycles

    def record(self, pc: int, instr, taken: bool, flags: int) -> None:
        if self._chained is not None:
            self._chained.record(pc, instr, taken, flags)
        cpu = self._cpu
        icount = cpu.icount
        # The handler adds the taken penalty right after this call;
        # fold it into this block's delta instead of the next one's.
        cycles = cpu.cycles + (TAKEN_BRANCH_PENALTY if taken else 0)
        cell = self.samples.get(pc)
        if cell is None:
            self.samples[pc] = cell = [0, 0, 0]
        cell[0] += icount - self._last_icount
        cell[1] += cycles - self._last_cycles
        cell[2] += 1
        self._last_icount = icount
        self._last_cycles = cycles

    def finish(self) -> None:
        """Attribute the tail (last branch -> stop) and detach."""
        cpu = self._cpu
        if cpu is None:
            return
        delta_i = cpu.icount - self._last_icount
        delta_c = cpu.cycles - self._last_cycles
        if delta_i or delta_c:
            cell = self.samples.setdefault(cpu.pc, [0, 0, 0])
            cell[0] += delta_i
            cell[1] += delta_c
            cell[2] += 1
        self.total_icount = cpu.icount - self._base_icount
        self.total_cycles = cpu.cycles - self._base_cycles
        cpu.branch_profiler = self._chained
        self._cpu = None
        self._chained = None

    def mapped(self, reverse_addr_map: dict[int, int]
               ) -> "HotBlockProfiler":
        """A copy with cache-address keys folded to guest addresses.

        Keys with no guest counterpart (entry stub, exit stubs,
        instrumentation branches) merge under key ``-1`` and are
        reported under the ``(outside text)`` bucket.
        """
        mapped = HotBlockProfiler()
        mapped.total_icount = self.total_icount
        mapped.total_cycles = self.total_cycles
        for pc, (icount, cycles, visits) in self.samples.items():
            guest = reverse_addr_map.get(pc, -1)
            cell = mapped.samples.setdefault(guest, [0, 0, 0])
            cell[0] += icount
            cell[1] += cycles
            cell[2] += visits
        return mapped

    # -- reporting -----------------------------------------------------------

    def block_profiles(self, program: Program) -> list[BlockProfile]:
        """Per-static-block aggregation, hottest (by cycles) first.

        Attribution keys are folded onto the program's CFG: a key
        inside a block credits that block; keys outside the text
        section (DBT leftovers, stop pcs past the image) pool under a
        synthetic block at ``start=-1``.
        """
        cfg = build_cfg(program)
        by_symbol = {addr: name for name, addr in program.symbols.items()
                     if program.contains_code(addr)}
        blocks: dict[int, BlockProfile] = {}
        for pc, (icount, cycles, visits) in self.samples.items():
            block = (cfg.block_containing(pc)
                     if pc >= 0 and program.contains_code(pc) else None)
            if block is None:
                profile = blocks.setdefault(
                    -1, BlockProfile(start=-1, end=-1,
                                     symbol="(outside text)"))
            else:
                profile = blocks.get(block.start)
                if profile is None:
                    profile = BlockProfile(
                        start=block.start, end=block.end,
                        symbol=by_symbol.get(block.start),
                        listing=[
                            (addr, format_instruction(instr, addr,
                                                      by_symbol))
                            for addr, instr in block.instructions])
                    blocks[block.start] = profile
            profile.icount += icount
            profile.cycles += cycles
            profile.visits += visits
        ordered = sorted(blocks.values(),
                         key=lambda b: (-b.cycles, b.start))
        return ordered

    def as_json(self, program: Program, top: int = 10) -> dict:
        """JSON-able summary (service profile jobs, dashboard panel)."""
        profiles = self.block_profiles(program)
        return {
            "total_icount": self.total_icount,
            "total_cycles": self.total_cycles,
            "blocks": [
                {"start": p.start, "end": p.end, "symbol": p.symbol,
                 "icount": p.icount, "cycles": p.cycles,
                 "visits": p.visits,
                 "share": (p.cycles / self.total_cycles
                           if self.total_cycles else 0.0)}
                for p in profiles[:top]],
            "block_count": len(profiles),
        }

    def render_report(self, program: Program, top: int = 10) -> str:
        """Human report: top-N blocks with annotated disassembly."""
        profiles = self.block_profiles(program)
        lines = [
            f"hot blocks for {program.source_name} — "
            f"{self.total_icount} instructions, "
            f"{self.total_cycles} cycles, "
            f"{len(profiles)} block(s) sampled",
        ]
        for rank, profile in enumerate(profiles[:top], start=1):
            share = (profile.cycles / self.total_cycles
                     if self.total_cycles else 0.0)
            where = (profile.symbol or
                     (f"{profile.start:#x}" if profile.start >= 0
                      else "(outside text)"))
            lines.append("")
            lines.append(
                f"#{rank} {where}  cycles={profile.cycles} "
                f"({share:.1%})  instructions={profile.icount}  "
                f"visits={profile.visits}")
            for addr, text in profile.listing:
                marker = "*" if addr in self.samples else " "
                lines.append(f"  {marker} {addr:#07x}: {text}")
        return "\n".join(lines)


def profile_native(program: Program, backend: str = "interp",
                   max_steps: int = 50_000_000):
    """Profile a native run; returns ``(cpu, stop, profiler)``.

    Works on either execution backend: compiled blocks detect the
    installed profiler at dispatch and route terminators through the
    interpreter's handlers, so attribution and totals match the
    reference interpreter exactly.
    """
    from repro.exec import install_backend
    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(program, executable_text=True)
    profiler = HotBlockProfiler()
    profiler.attach(cpu)
    try:
        stop = cpu.run(max_steps=max_steps)
    finally:
        profiler.finish()
    return cpu, stop, profiler


def profile_dbt(program: Program, max_steps: int = 50_000_000):
    """Profile a run under the (plain) DBT; returns
    ``(dbt, result, profiler)`` with the profiler's keys already
    mapped back to guest addresses via the translation cache's
    reverse address map."""
    from repro.dbt.runtime import Dbt
    dbt = Dbt(program)
    profiler = HotBlockProfiler()
    profiler.attach(dbt.cpu)
    try:
        result = dbt.run(max_steps=max_steps)
    finally:
        profiler.finish()
    return dbt, result, profiler.mapped(dbt.reverse_addr_map())
