"""Execution-backend protocol: instruction semantics vs. strategy.

The machine's *semantics* live in :mod:`repro.machine.cpu` — one
handler per opcode, a deterministic cycle model, fault hooks.  How
those semantics are *driven* is a separate concern: the reference
strategy fetches/decodes/dispatches one instruction at a time, while
the block-compiling strategy (:mod:`repro.exec.block`) compiles each
guest basic block into a specialized Python closure, the same move the
paper's DBT makes at the machine-code level.

A backend is installed on a :class:`~repro.machine.cpu.Cpu` and takes
over ``Cpu.run``'s inner loop.  Every backend must be *transparent*:
byte-identical architectural state, stop info, cycle/instruction
counts, hook and profiler behaviour as the reference interpreter.  The
N-way differential fuzzing oracle enforces this (``repro fuzz
--backend block``).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

#: Backend names accepted by ``--backend`` / ``PipelineConfig.backend``.
BACKEND_NAMES = ("interp", "block")

DEFAULT_BACKEND = "interp"


@runtime_checkable
class ExecutionBackend(Protocol):
    """Pluggable execution strategy for one CPU."""

    #: short name used by the CLI and PipelineConfig
    name: str

    def install(self, cpu) -> "ExecutionBackend":
        """Attach to ``cpu`` (claim its backend slot and watchers)."""

    def run(self, cpu, max_steps: int, max_cycles: int | None):
        """Execute until halt/trap/fault or a budget limit; returns the
        same :class:`~repro.machine.faults.StopInfo` the reference
        interpreter would."""

    def stats(self) -> dict:
        """Backend-specific counters (empty for the interpreter)."""


class InterpBackend:
    """The reference strategy: the dispatch-table interpreter.

    Installing it leaves ``cpu.backend`` as ``None`` so ``Cpu.run``
    keeps its zero-overhead direct path into ``_run_loop`` — the
    interpreter *is* the default; this class only gives it a name and
    a uniform surface.
    """

    name = "interp"

    def install(self, cpu) -> "InterpBackend":
        cpu.backend = None
        cpu._backend_write_watch = None
        return self

    def run(self, cpu, max_steps: int, max_cycles: int | None):
        return cpu._run_loop(max_steps, max_cycles)

    def stats(self) -> dict:
        return {}


def create_backend(name: str):
    """Instantiate a backend by name; raises ValueError on unknowns."""
    if name == "interp" or name is None:
        return InterpBackend()
    if name == "block":
        from repro.exec.block import BlockCompileBackend
        return BlockCompileBackend()
    raise ValueError(
        f"unknown execution backend {name!r} (have: {BACKEND_NAMES})")


def install_backend(cpu, name: str):
    """Create and install a backend on ``cpu``; returns the backend.

    ``interp`` is a no-op (a fresh Cpu already runs the reference
    interpreter), so the campaign hot path pays nothing for the
    default.
    """
    if name == "interp" or name is None:
        return None
    return create_backend(name).install(cpu)
