"""Execution backends: pluggable strategies for running guest code.

``interp`` is the reference dispatch-table interpreter; ``block``
compiles guest basic blocks into specialized Python closures and
chains them host-side.  Both are observationally identical — the
differential fuzzing oracle enforces byte-identical RunDigests.
"""

from repro.exec.base import (BACKEND_NAMES, DEFAULT_BACKEND,
                             ExecutionBackend, InterpBackend,
                             create_backend, install_backend)
from repro.exec.profiler import (BlockProfile, HotBlockProfiler,
                                 profile_dbt, profile_native)

__all__ = [
    "BACKEND_NAMES",
    "BlockProfile",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "HotBlockProfiler",
    "InterpBackend",
    "create_backend",
    "install_backend",
    "profile_dbt",
    "profile_native",
]
