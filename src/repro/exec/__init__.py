"""Execution backends: pluggable strategies for running guest code.

``interp`` is the reference dispatch-table interpreter; ``block``
compiles guest basic blocks into specialized Python closures and
chains them host-side.  Both are observationally identical — the
differential fuzzing oracle enforces byte-identical RunDigests.
"""

from repro.exec.base import (BACKEND_NAMES, DEFAULT_BACKEND,
                             ExecutionBackend, InterpBackend,
                             create_backend, install_backend)

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "InterpBackend",
    "create_backend",
    "install_backend",
]
