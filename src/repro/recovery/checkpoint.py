"""Architectural checkpoints over copy-on-write memory deltas.

A :class:`Checkpoint` is a full snapshot of the guest-visible machine:
registers, FLAGS, PC, the retired-instruction and cycle counters, the
halt/CFC-error latches, and the *lengths* of the externally visible
output and syscall logs (restoring truncates them, which is what makes
re-execution free of duplicated side effects — the harness buffers all
I/O).  Memory is not copied wholesale: :class:`~repro.machine.memory.
Memory` journals the pre-image of every page the first time it is
dirtied (``Memory.cow``), and each checkpoint owns the journal of the
interval that *ended* at it.  Rolling back to checkpoint ``j`` replays
the pre-images of every interval after ``j`` (oldest value wins) plus
the currently open interval, so only pages actually written since ``j``
are touched — and every restore goes through ``Memory.write_raw``, so
the interpreter's decode cache, the block backend's compiled traces
(including their chain links), and any other write watcher are
invalidated exactly like a guest store would.

The copy-on-write bound is the DBT code-cache base: everything
architectural (text, data, stack, the dataflow shadow region) lives
below it, while translation-cache writes above it are a
semantics-preserving cache that must *not* be rolled back (the DBT's
flush epoch, recorded per checkpoint, governs their validity instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dbt.codecache import CACHE_BASE
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE

#: Byte bound below which memory is architectural and checkpointed.
RECOVERABLE_BOUND = CACHE_BASE


@dataclass
class Checkpoint:
    """One consistent point the machine can be rolled back to."""

    ordinal: int
    pc: int
    icount: int
    cycles: int
    regs: tuple
    flags: int
    exit_code: int | None
    cfc_error: object
    output_len: int
    output_values_len: int
    syscall_len: int
    #: DBT flush epoch at capture time (0 outside the DBT pipeline).  A
    #: checkpoint whose PC points into the translation cache is only
    #: consistent while no flush has happened since capture.
    epoch: int = 0
    #: Injector occurrence counters at capture time, for re-arming
    #: persistent faults after rollback.
    injector_state: tuple | None = None
    #: Opaque harness-side state captured alongside the CPU (the
    #: multithreaded machine snapshots its saved contexts, ready queue
    #: and mutexes here); restored by the manager's ``extra_restore``.
    extra: object = None
    #: Pre-images of pages dirtied in the interval ending here.
    pages: dict = field(default_factory=dict)


def capture_checkpoint(cpu, ordinal: int, epoch: int = 0,
                       injector_state: tuple | None = None,
                       extra: object = None) -> Checkpoint:
    """Snapshot the CPU and drain the open COW interval into it."""
    mem = cpu.memory
    pages = mem.cow if mem.cow is not None else {}
    mem.cow = {}
    trace = cpu.syscall_trace
    return Checkpoint(
        ordinal=ordinal,
        pc=cpu.pc,
        icount=cpu.icount,
        cycles=cpu.cycles,
        regs=tuple(cpu.regs),
        flags=cpu.flags,
        exit_code=cpu.exit_code,
        cfc_error=cpu.cfc_error,
        output_len=len(cpu.output),
        output_values_len=len(cpu.output_values),
        syscall_len=len(trace) if trace is not None else 0,
        epoch=epoch,
        injector_state=injector_state,
        extra=extra,
        pages=pages,
    )


def restore_checkpoint(cpu, checkpoints: list, index: int) -> int:
    """Roll ``cpu`` back to ``checkpoints[index]``; drop later ones.

    Returns the number of pages rewritten.  Memory restoration merges
    the open COW interval with every interval captured after the
    target, oldest pre-image winning, and only writes pages whose
    current contents differ — through ``write_raw`` so every installed
    write watcher (decode cache, compiled-block invalidation) fires.
    """
    cp = checkpoints[index]
    mem = cpu.memory
    # Newest first, then overridden towards the oldest: a page dirtied
    # in several intervals must come back as its pre-image from the
    # *earliest* interval after the target — the value it held at the
    # target checkpoint.
    images = dict(mem.cow) if mem.cow is not None else {}
    for later in range(len(checkpoints) - 1, index, -1):
        images.update(checkpoints[later].pages)
    restored = 0
    data = mem.data
    for page, blob in images.items():
        base = page << PAGE_SHIFT
        if bytes(data[base:base + PAGE_SIZE]) != blob:
            mem.write_raw(base, blob)
            restored += 1
    if mem.cow is not None:
        mem.cow = {}
    del checkpoints[index + 1:]
    cpu.pc = cp.pc
    cpu.icount = cp.icount
    cpu.cycles = cp.cycles
    cpu.regs[:] = cp.regs
    cpu.flags = cp.flags
    cpu.exit_code = cp.exit_code
    cpu.cfc_error = cp.cfc_error
    del cpu.output[cp.output_len:]
    del cpu.output_values[cp.output_values_len:]
    if cpu.syscall_trace is not None:
        del cpu.syscall_trace[cp.syscall_len:]
    return restored


def prune_checkpoints(checkpoints: list, max_live: int) -> None:
    """Bound memory held by the chain without losing restorability.

    Merges the oldest non-entry checkpoint into its successor: a page
    pre-imaged at the victim but not at the survivor was untouched over
    the survivor's interval, so the victim's (older) pre-image is the
    correct one for any rollback at or before the survivor.
    """
    while len(checkpoints) > max_live and len(checkpoints) > 2:
        victim = checkpoints.pop(1)
        survivor = checkpoints[1]
        merged = dict(survivor.pages)
        merged.update(victim.pages)
        survivor.pages = merged
