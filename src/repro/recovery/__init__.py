"""``repro.recovery`` — checkpoint/rollback recovery.

Turns the paper's detection machinery into survival (ROADMAP item 3,
following Khoshavi et al., arXiv:1607.07727): periodic architectural
checkpoints over copy-on-write memory deltas, rollback to the last
consistent checkpoint when a technique's error branch fires or the
watchdog trips, re-execution with a retry budget and exponential
checkpoint-interval adaptation, and escalation to a clean restart from
entry when a rollback re-detects.  See ``docs/recovery.md``.
"""

from repro.recovery.checkpoint import (Checkpoint, RECOVERABLE_BOUND,
                                       capture_checkpoint,
                                       prune_checkpoints,
                                       restore_checkpoint)
from repro.recovery.manager import (DEFAULT_CHECKPOINT_INTERVAL,
                                    DEFAULT_MAX_RETRIES, MIN_INTERVAL,
                                    RecoveryManager, RecoveryReport)

__all__ = [
    "Checkpoint", "DEFAULT_CHECKPOINT_INTERVAL", "DEFAULT_MAX_RETRIES",
    "MIN_INTERVAL", "RECOVERABLE_BOUND", "RecoveryManager",
    "RecoveryReport", "capture_checkpoint", "prune_checkpoints",
    "restore_checkpoint",
]
