"""The recovery loop: segmented execution, rollback, re-execution.

:class:`RecoveryManager` owns one protected run.  It slices execution
into checkpoint intervals (both backends honour ``max_steps`` exactly,
so the block tier's batched icount/cycle accounting is always settled
at a segment boundary — rollback never lands inside an in-flight
closure), captures a :class:`~repro.recovery.checkpoint.Checkpoint`
after each clean segment, and when the pipeline classifies a stop as a
detection — or the watchdog trips on an exhausted step budget — rolls
back to the newest consistent checkpoint and re-executes with a fresh
budget.  A re-detection after a rollback escalates to a clean restart
from the entry checkpoint; the retry budget bounds total attempts, and
the checkpoint interval adapts exponentially (halving after a rollback,
doubling after a streak of clean segments).

The manager is pipeline-agnostic: the caller supplies ``step`` (run up
to N instructions, return the backend's stop object), ``classify``
(map that stop object to ``"detected"`` / ``"limit"`` / ``"done"``),
and — under the DBT — ``epoch`` / ``entry_restart`` hooks so
checkpoints whose PC points into a flushed translation cache are never
restored, and an entry restart re-primes translation from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.recovery.checkpoint import (capture_checkpoint,
                                       prune_checkpoints,
                                       restore_checkpoint,
                                       RECOVERABLE_BOUND)

DEFAULT_CHECKPOINT_INTERVAL = 4096
DEFAULT_MAX_RETRIES = 3

#: Interval adaptation: never checkpoint more often than this ...
MIN_INTERVAL = 64
#: ... grow again after this many consecutive clean segments ...
GROW_AFTER = 4
#: ... up to this multiple of the configured interval.
MAX_GROWTH = 8

#: Live checkpoints kept (entry + most recent); older ones are merged.
MAX_LIVE_CHECKPOINTS = 8


@dataclass
class RecoveryReport:
    """What recovery did during one run (journalled and explained)."""

    interval: int
    #: Detections + watchdog trips that triggered a recovery action.
    triggers: int = 0
    #: Rollbacks/restarts actually performed (bounded by max_retries).
    attempts: int = 0
    #: Of which, clean restarts from the entry checkpoint.
    restarts: int = 0
    #: Checkpoints captured (excluding the entry checkpoint).
    checkpoints: int = 0
    #: Instructions discarded across all rollbacks (stop - target).
    rollback_icount: int = 0
    #: Cycles discarded across all rollbacks (re-execution cost).
    reexec_cycles: int = 0
    #: True when a trigger fired with the retry budget exhausted.
    gave_up: bool = False
    #: Ordered event log for ``repro explain`` timelines.
    events: list = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "interval": self.interval,
            "triggers": self.triggers,
            "attempts": self.attempts,
            "restarts": self.restarts,
            "checkpoints": self.checkpoints,
            "rollback_icount": self.rollback_icount,
            "reexec_cycles": self.reexec_cycles,
            "gave_up": self.gave_up,
            "events": list(self.events),
        }


class RecoveryManager:
    """Checkpoint/rollback harness around one protected run."""

    def __init__(self, cpu, *, step, classify, budget,
                 interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 injector=None, reinstall=None, persistent: bool = False,
                 epoch=None, entry_restart=None,
                 extra_capture=None, extra_restore=None,
                 max_live: int = MAX_LIVE_CHECKPOINTS):
        self.cpu = cpu
        self.step = step
        self.classify = classify
        self.budget = budget
        self.interval = max(1, interval)
        self.max_retries = max_retries
        self.injector = injector
        self.reinstall = reinstall
        self.persistent = persistent
        self.epoch = epoch if epoch is not None else (lambda: 0)
        self.entry_restart = entry_restart
        #: harness-side state carried with every checkpoint (e.g. the
        #: multithreaded machine's saved contexts and ready queue):
        #: ``extra_capture()`` is stored on capture, ``extra_restore
        #: (value)`` is invoked after the CPU rollback.
        self.extra_capture = extra_capture
        self.extra_restore = extra_restore
        self.max_live = max_live
        self.checkpoints: list = []
        self.report = RecoveryReport(interval=self.interval)

    # -- injector occurrence state ------------------------------------

    def _injector_mark(self):
        inj = self.injector
        if inj is None or not hasattr(inj, "fired"):
            return None
        return (inj.count, inj.fired, inj.fired_icount, inj.fired_cycles)

    def _injector_restore(self, mark) -> None:
        inj = self.injector
        if inj is None or mark is None:
            return
        inj.count, inj.fired, inj.fired_icount, inj.fired_cycles = mark

    # -- the loop ------------------------------------------------------

    def execute(self):
        """Run to completion (or give up); returns the final stop."""
        mem = self.cpu.memory
        mem.cow = {}
        mem.cow_bound = RECOVERABLE_BOUND
        try:
            return self._execute()
        finally:
            mem.cow = None

    def _capture(self) -> None:
        registry = obs.get_registry()
        pages = len(self.cpu.memory.cow)
        start = time.perf_counter() if registry is not None else 0.0
        self.checkpoints.append(capture_checkpoint(
            self.cpu, ordinal=len(self.checkpoints), epoch=self.epoch(),
            injector_state=self._injector_mark(),
            extra=(self.extra_capture()
                   if self.extra_capture is not None else None)))
        prune_checkpoints(self.checkpoints, self.max_live)
        if registry is not None:
            obs.counter("recovery_checkpoints_total",
                        help="Checkpoints captured").inc()
            obs.counter("recovery_pages_preserved_total",
                        help="Pre-image pages drained into "
                             "checkpoints").inc(pages)
            obs.counter("recovery_capture_seconds_total",
                        help="Wall time spent capturing "
                             "checkpoints").inc(
                time.perf_counter() - start)

    def _pick_target(self) -> int:
        """Newest consistent checkpoint; entry once we are retrying."""
        if self.report.attempts > 0:
            return 0  # re-detected after a rollback: escalate
        current = self.epoch()
        for index in range(len(self.checkpoints) - 1, 0, -1):
            if self.checkpoints[index].epoch == current:
                return index
        return 0

    def _rollback(self, trigger: str) -> None:
        cpu = self.cpu
        index = self._pick_target()
        cp = self.checkpoints[index]
        distance = cpu.icount - cp.icount
        discarded = cpu.cycles - cp.cycles
        restore_checkpoint(cpu, self.checkpoints, index)
        if self.extra_restore is not None and cp.extra is not None:
            self.extra_restore(cp.extra)
        if index == 0:
            self.report.restarts += 1
            obs.counter("recovery_restarts_total",
                        help="Clean restarts from the entry "
                             "checkpoint").inc()
            if self.entry_restart is not None and cp.epoch != self.epoch():
                # The translation cache was flushed since entry: the
                # saved PC points at a dead stub.  Re-prime and refresh
                # the checkpoint so later restarts stay consistent.
                self.entry_restart()
                cp.pc = cpu.pc
                cp.epoch = self.epoch()
        else:
            obs.counter("recovery_rollbacks_total",
                        help="Rollbacks to a mid-run checkpoint").inc()
        if self.persistent:
            # The spec models a stuck-at error: restore the occurrence
            # counters to their checkpoint-time values and re-arm.
            self._injector_restore(cp.injector_state)
            if self.reinstall is not None:
                self.reinstall()
        self.report.attempts += 1
        self.report.rollback_icount += distance
        self.report.reexec_cycles += discarded
        self.report.events.append({
            "event": "restart" if index == 0 else "rollback",
            "trigger": trigger,
            "target": cp.ordinal,
            "target_icount": cp.icount,
            "distance_icount": distance,
            "discarded_cycles": discarded,
        })

    def _execute(self):
        cpu = self.cpu
        self._capture()  # ordinal 0: the entry checkpoint
        self.report.checkpoints = 0  # entry does not count
        interval = self.interval
        max_interval = self.interval * MAX_GROWTH
        clean_streak = 0
        attempt_base = cpu.icount
        stopish = None
        while True:
            remaining = self.budget - (cpu.icount - attempt_base)
            trigger = None
            if remaining <= 0:
                trigger = "watchdog"
            else:
                stopish = self.step(min(interval, remaining))
                kind = self.classify(stopish)
                if kind == "done":
                    return stopish
                if kind == "detected":
                    trigger = "detected"
                elif self.budget - (cpu.icount - attempt_base) > 0:
                    # Segment boundary with budget left: checkpoint.
                    self._capture()
                    self.report.checkpoints += 1
                    clean_streak += 1
                    if clean_streak >= GROW_AFTER:
                        interval = min(interval * 2, max_interval)
                        clean_streak = 0
                    continue
                else:
                    trigger = "watchdog"
            if stopish is None:
                # Degenerate budget: materialize a STEP_LIMIT stop so
                # the caller always gets a real stop object back.
                stopish = self.step(0)
            self.report.triggers += 1
            self.report.events.append({
                "event": trigger,
                "icount": cpu.icount,
                "cycles": cpu.cycles,
            })
            if self.report.attempts >= self.max_retries:
                self.report.gave_up = True
                self.report.events.append({
                    "event": "gave-up",
                    "attempts": self.report.attempts,
                })
                return stopish
            self._rollback(trigger)
            interval = max(MIN_INTERVAL, interval // 2)
            clean_streak = 0
            attempt_base = cpu.icount
