"""Reproduction of "Software-Based Transparent and Comprehensive
Control-Flow Error Detection" (Borin, Wang, Wu, Araujo — CGO 2006).

The package is layered exactly like the system the paper describes:

* :mod:`repro.isa` — the R32 instruction set (the IA-32/EM64T stand-in)
  with assembler, encoder and disassembler,
* :mod:`repro.machine` — the paged-memory, cycle-accounting machine
  simulator with execute-disable and write-protection,
* :mod:`repro.cfg` — basic blocks, CFGs and classical analyses,
* :mod:`repro.checking` — the five signature-monitoring techniques
  (CFCSS, ECCA, ECF and the paper's EdgCF and RCF), the Jcc/CMOVcc
  update styles and the ALLBB/RET-BE/RET/END checking policies,
* :mod:`repro.instrument` — the static binary rewriter,
* :mod:`repro.dbt` — the dynamic binary translator (Runtime / Frontend /
  Backend) that applies the techniques transparently,
* :mod:`repro.faults` — the single-bit error model, fault injectors and
  campaign runners,
* :mod:`repro.formal` — the Section-4 formalization with an exhaustive
  single-error condition checker,
* :mod:`repro.workloads` — the SPEC2000-shaped synthetic benchmark
  suite,
* :mod:`repro.analysis` — builders for every evaluation table/figure.

Quickstart::

    from repro import assemble, run_dbt
    from repro.checking import EdgCF

    program = assemble(open("program.s").read())
    dbt, result = run_dbt(program, technique=EdgCF())
    assert result.ok
"""

from repro.isa import Program, assemble, disassemble_program
from repro.machine import Cpu, run_native
from repro.cfg import build_cfg
from repro.checking import (ECF, RCF, CFCSS, ECCA, EdgCF, Policy,
                            UpdateStyle, make_technique)
from repro.instrument import instrument_program
from repro.dbt import Dbt, run_dbt
from repro.faults import (Category, Outcome, PipelineConfig,
                          compute_error_model, generate_category_faults,
                          run_campaign)

__version__ = "1.0.0"

__all__ = [
    "Program", "assemble", "disassemble_program",
    "Cpu", "run_native",
    "build_cfg",
    "ECF", "RCF", "CFCSS", "ECCA", "EdgCF", "Policy", "UpdateStyle",
    "make_technique",
    "instrument_program",
    "Dbt", "run_dbt",
    "Category", "Outcome", "PipelineConfig", "compute_error_model",
    "generate_category_faults", "run_campaign",
    "__version__",
]
