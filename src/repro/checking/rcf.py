"""RCF — Region-based Control-Flow checking (paper Section 3.2).

RCF strengthens EdgCF by giving every *region* of instrumented code its
own signature instead of sharing 0 for all block bodies:

* region ``BE`` (block entrance, Figure 9's R1E): signature = sig(B).
  The CHECK_SIG comparison and its error-report branch live here, so a
  soft error on the inserted check branch that escapes the region lands
  somewhere whose expected signature differs from sig(B) — detected.
  (Under EdgCF the same escape carries PC' = 0, which every block body
  shares — undetected.)
* region ``body`` (Figure 9's R1): signature = sig(B) + 1.  Block
  addresses are word-aligned, so the +1 values never collide with any
  block-entrance signature.
* the exit-update window (Figure 9's R2E/R3E): PC' already holds the
  next block's signature; both successors' values are valid here, which
  is exactly the paper's "R2E/R3E means both are valid signatures".

The shadow PC accumulates additively, so errors propagate to the next
executed check just as in EdgCF.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import PCP, T0
from repro.checking.base import (BlockInfo, CondDesc, ErrorBranch, Item,
                                 LoadSig, RawIns, SigExpr, Technique,
                                 const_expr, sig_of)
from repro.checking.updates import additive_cond_update

#: Offset of the body region's signature from the block signature.
BODY_REGION_OFFSET = 1


def body_sig(block_start: int) -> SigExpr:
    """Signature of the block's body region: sig(B) + 1."""
    return sig_of(block_start) + const_expr(BODY_REGION_OFFSET)


class RCF(Technique):
    """Region-based control-flow checking."""

    name = "rcf"

    def prologue(self, entry_block: int) -> list[Item]:
        return [LoadSig(PCP, sig_of(entry_block))]

    def entry_items(self, block: BlockInfo, check: bool) -> list[Item]:
        items: list[Item] = []
        if check:
            # Compare in a scratch register: PC' itself keeps holding the
            # entrance-region signature, protecting the check branch.
            items += [
                LoadSig(T0, sig_of(block.start)),
                RawIns(Instruction(op=Op.LSUB, rd=T0, rs=PCP, rt=T0)),
                ErrorBranch(Op.JRNZ, rd=T0),
            ]
        # Transition BE -> body region (always, check or not).
        items.append(RawIns(Instruction(op=Op.LEA, rd=PCP, rs=PCP,
                                        imm=BODY_REGION_OFFSET)))
        return items

    def exit_items_direct(self, block: BlockInfo, target: int) -> list[Item]:
        delta = sig_of(target) - body_sig(block.start)
        return [
            LoadSig(T0, delta),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
        ]

    def exit_items_cond(self, block: BlockInfo, taken: int, fallthrough: int,
                        cond: CondDesc) -> list[Item]:
        body = body_sig(block.start)
        taken_sig = sig_of(taken)
        fall_sig = sig_of(fallthrough)
        return additive_cond_update(
            taken_delta=taken_sig - body,
            fall_minus_taken=fall_sig - taken_sig,
            cond=cond,
            style=self.update_style,
            fall_delta=fall_sig - body,
        )

    def exit_items_indirect(self, block: BlockInfo,
                            target_reg: int) -> list[Item]:
        # PC' += target − (sig(B) + 1)
        return [
            LoadSig(T0, body_sig(block.start)),
            RawIns(Instruction(op=Op.LSUB, rd=PCP, rs=PCP, rt=T0)),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=target_reg)),
        ]
