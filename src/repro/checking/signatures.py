"""Signature assignment for the whole-CFG techniques (CFCSS, ECCA).

The paper's own techniques (ECF, EdgCF, RCF) use the block's address as
its signature — free, unique, and computable block-locally, which is
what makes them implementable in a translate-on-demand DBT.  CFCSS and
ECCA instead need signatures assigned over the *whole* CFG up front:

* CFCSS requires "common predecessor blocks [to] have the same
  signature" (paper Section 3): all predecessors of a fan-in block must
  share one signature, transitively.  We compute the equivalence classes
  with a union-find and give each class one signature.  This aliasing is
  precisely the source of CFCSS's category-D/E blind spots the paper
  exploits.
* ECCA assigns each block a distinct prime BID; a block's exit sets the
  run-time signature to the *product* of its successors' BIDs and the
  entry assertion checks divisibility — mistaken branch direction
  (category A) is invisible because both successors divide the product.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.graph import ControlFlowGraph


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self.parent.setdefault(x, x)
        if parent != x:
            parent = self.find(parent)
            self.parent[x] = parent
        return parent

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


@dataclass
class CfcssSignatures:
    """CFCSS signature assignment over a CFG."""

    #: block start -> signature value (shared within pred classes)
    sig: dict[int, int]
    #: block start -> entry xor constant d_B = sig(pred class) ^ sig(B)
    d_value: dict[int, int]

    @classmethod
    def assign(cls, cfg: ControlFlowGraph) -> "CfcssSignatures":
        classes = _UnionFind()
        for block in cfg:
            preds = block.predecessors
            if len(preds) > 1:
                first = preds[0]
                for other in preds[1:]:
                    classes.union(first, other)
        # One signature per class; values chosen dense and nonzero.
        class_sig: dict[int, int] = {}
        sig: dict[int, int] = {}
        next_value = 1
        for block in cfg:
            root = classes.find(block.start)
            if root not in class_sig:
                class_sig[root] = next_value
                next_value += 1
            sig[block.start] = class_sig[root]

        d_value: dict[int, int] = {}
        for block in cfg:
            if block.predecessors:
                pred_sig = sig[block.predecessors[0]]
            else:
                # Entry (or unreachable) block: the prologue seeds the
                # run-time signature with 0, so d must equal sig(B).
                pred_sig = 0
            d_value[block.start] = pred_sig ^ sig[block.start]
        return cls(sig=sig, d_value=d_value)


def _primes(count: int) -> list[int]:
    """First ``count`` odd primes (3, 5, 7, ...)."""
    found: list[int] = []
    candidate = 3
    while len(found) < count:
        is_prime = all(candidate % p for p in found if p * p <= candidate)
        if is_prime and candidate % 2:
            found.append(candidate)
        candidate += 2
    return found


@dataclass
class EccaSignatures:
    """ECCA block identifiers (distinct primes) over a CFG."""

    bid: dict[int, int]

    @classmethod
    def assign(cls, cfg: ControlFlowGraph) -> "EccaSignatures":
        blocks = [block.start for block in cfg]
        primes = _primes(len(blocks))
        bid = dict(zip(blocks, primes))
        # Product-of-successors must stay within 32 bits; with the first
        # ~3000 odd primes (max ~27k) products stay below 2^31 for any
        # realistic workload here.  Guard anyway.
        for block in cfg:
            product = 1
            for successor in block.successors:
                product *= bid.get(successor, 1)
            if product >= 1 << 31:
                raise ValueError(
                    "ECCA BID product overflows 32 bits; program too "
                    "large for the prime-product scheme")
        return cls(bid=bid)

    def exit_product(self, successors: tuple[int, ...] | list[int]) -> int:
        product = 1
        for successor in successors:
            product *= self.bid.get(successor, 1)
        return product
