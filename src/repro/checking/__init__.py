"""Signature-monitoring control-flow checking techniques.

Two from this paper:

* :class:`~repro.checking.edgcf.EdgCF` — edge control-flow checking,
* :class:`~repro.checking.rcf.RCF` — region-based control-flow checking,

and three baselines it compares against:

* :class:`~repro.checking.ecf.ECF` — run-time adjusting signatures
  (Reis et al., SWIFT),
* :class:`~repro.checking.cfcss.CFCSS` — static xor signatures (Oh et
  al.),
* :class:`~repro.checking.ecca.ECCA` — prime-product assertions
  (Alkhalifa et al.).

Plus the Jcc/CMOVcc update styles (Figure 14) and the checking
policies (Figure 15).
"""

from repro.checking.base import (ERROR_LABEL, BlockInfo, CheckedDiv,
                                 CondDesc, ErrorBranch, Item, LabelMark,
                                 LoadSig, LocalBranch, RawIns, SigExpr,
                                 Technique, UpdateStyle, const_expr,
                                 sig_of)
from repro.checking.cfcss import CFCSS
from repro.checking.dataflow import (SHADOW_BASE, DataFlowDuplication)
from repro.checking.ecca import ECCA
from repro.checking.ecf import ECF
from repro.checking.edgcf import EdgCF, NaiveEdgeCF
from repro.checking.policies import ALL_POLICIES, Policy
from repro.checking.rcf import RCF
from repro.checking.signatures import CfcssSignatures, EccaSignatures

__all__ = [
    "ERROR_LABEL", "BlockInfo", "CheckedDiv", "CondDesc", "ErrorBranch",
    "Item", "LabelMark", "LoadSig", "LocalBranch", "RawIns", "SigExpr",
    "Technique", "UpdateStyle", "const_expr", "sig_of",
    "CFCSS", "ECCA", "ECF", "EdgCF", "NaiveEdgeCF", "RCF",
    "SHADOW_BASE", "DataFlowDuplication",
    "ALL_POLICIES", "Policy",
    "CfcssSignatures", "EccaSignatures",
]


def make_technique(name: str, update_style: UpdateStyle = UpdateStyle.JCC,
                   cfg=None) -> Technique:
    """Factory: build a technique by name.

    ``cfg`` is required for the whole-CFG techniques (cfcss, ecca).
    """
    key = name.lower()
    if key == "edgcf":
        return EdgCF(update_style=update_style)
    if key == "edgcf-naive":
        return NaiveEdgeCF(update_style=update_style)
    if key == "rcf":
        return RCF(update_style=update_style)
    if key == "ecf":
        return ECF(update_style=update_style)
    if key == "cfcss":
        if cfg is None:
            raise ValueError("CFCSS needs the whole CFG")
        return CFCSS(CfcssSignatures.assign(cfg), update_style=update_style)
    if key == "ecca":
        if cfg is None:
            raise ValueError("ECCA needs the whole CFG")
        return ECCA(EccaSignatures.assign(cfg), update_style=update_style)
    raise ValueError(f"unknown technique {name!r}")
