"""ECF — enhanced control-flow checking with a run-time adjusting
signature (Reis et al., SWIFT; paper Section 3, Figure 4).

State: the pair <PC', RTS>.

* head (entry): ``PC' += RTS`` — folds the adjustment chosen by the
  predecessor; CHECK_SIG is ``PC' == sig(B)``,
* tail (exit): ``RTS = sig(next) − sig(B)`` selected conditionally
  (the cmovle pattern of Figure 4, or the Jcc variant of Figure 14).

Because PC' holds ``sig(B)`` throughout the block body — a value that
is *re-created* by re-entering the same block — a jump into the middle
of the block that re-executes its own tail lands back on a consistent
signature: category C is undetectable, the gap the paper's EdgCF/RCF
close (Section 3: "it still cannot detect errors in category C").
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import PCP, RTS, T0
from repro.checking.base import (BlockInfo, CondDesc, ErrorBranch, Item,
                                 LoadSig, RawIns, Technique, const_expr,
                                 sig_of)
from repro.checking.updates import overwrite_cond_update


class ECF(Technique):
    """Enhanced control-flow checking (run-time adjusting signature)."""

    name = "ecf"
    signature_registers = (PCP, RTS)

    def prologue(self, entry_block: int) -> list[Item]:
        return [
            LoadSig(PCP, sig_of(entry_block)),
            LoadSig(RTS, const_expr(0)),
        ]

    def entry_items(self, block: BlockInfo, check: bool) -> list[Item]:
        items: list[Item] = [
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=RTS)),
        ]
        if check:
            items += [
                LoadSig(T0, sig_of(block.start)),
                RawIns(Instruction(op=Op.LSUB, rd=T0, rs=PCP, rt=T0)),
                ErrorBranch(Op.JRNZ, rd=T0),
            ]
        return items

    def exit_items_direct(self, block: BlockInfo, target: int) -> list[Item]:
        return [LoadSig(RTS, sig_of(target) - sig_of(block.start))]

    def exit_items_cond(self, block: BlockInfo, taken: int, fallthrough: int,
                        cond: CondDesc) -> list[Item]:
        here = sig_of(block.start)
        return overwrite_cond_update(
            reg=RTS,
            taken_value=sig_of(taken) - here,
            fall_value=sig_of(fallthrough) - here,
            cond=cond,
            style=self.update_style,
        )

    def exit_items_indirect(self, block: BlockInfo,
                            target_reg: int) -> list[Item]:
        # RTS = dynamic target − sig(B)
        return [
            LoadSig(T0, sig_of(block.start)),
            RawIns(Instruction(op=Op.LSUB, rd=RTS, rs=target_reg, rt=T0)),
        ]
