"""CFCSS — Control-Flow Checking by Software Signatures (Oh, Shirvani,
McCluskey; paper Section 3).

The classic xor scheme: each block has a static signature; a shadow
register is xor'ed at every block entry with a statically determined
constant ``d_B`` that transforms the predecessor's signature into this
block's, then compared against ``sig(B)``.

Faithfully reproduced limitations (all called out in the paper):

* predecessors of a fan-in block must share one signature — we assign
  signatures over union-find classes (see
  :mod:`repro.checking.signatures`) — so a wrong edge between blocks
  whose sources alias is invisible: categories D and E leak,
* the signature changes only at block entry, so jumps into a block's
  middle that skip the entry xor re-converge: category C leaks,
* the update depends only on the predecessor, not on the branch
  direction, so mistaken branches (category A) are invisible,
* the check compares with flag-setting instructions and a conditional
  error branch, so it clobbers FLAGS (fine for the static rewriter on
  flag-clean guests; unusable in the transparent DBT — one more reason
  the paper's DBT implements only ECF/EdgCF/RCF).

This technique requires the whole CFG (``requires_whole_cfg``) and, in
this reproduction, intra-procedural programs (no ret / indirect exits);
the static rewriter enforces both.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import PCP, T0
from repro.checking.base import (BlockInfo, CondDesc, ErrorBranch, Item,
                                 LoadSig, RawIns, Technique, const_expr)
from repro.checking.signatures import CfcssSignatures


class CFCSS(Technique):
    """Control-flow checking by software signatures."""

    name = "cfcss"
    requires_whole_cfg = True
    clobbers_flags = True

    def __init__(self, signatures: CfcssSignatures, **kwargs):
        super().__init__(**kwargs)
        self.signatures = signatures

    def prologue(self, entry_block: int) -> list[Item]:
        # Seed PC' so the entry block's xor lands on sig(entry).  When
        # the entry has no predecessors d was computed against a virtual
        # signature of 0 and this seed is 0; when a loop re-enters the
        # entry block, d came from the real predecessors instead.
        seed = (self.signatures.sig[entry_block]
                ^ self.signatures.d_value[entry_block])
        return [LoadSig(PCP, const_expr(seed))]

    def entry_items(self, block: BlockInfo, check: bool) -> list[Item]:
        d_value = self.signatures.d_value[block.start]
        sig = self.signatures.sig[block.start]
        items: list[Item] = [
            LoadSig(T0, const_expr(d_value)),
            RawIns(Instruction(op=Op.XOR, rd=PCP, rs=PCP, rt=T0)),
        ]
        if check:
            items += [
                LoadSig(T0, const_expr(sig)),
                # xor sets ZF iff equal; the error branch reads it.
                RawIns(Instruction(op=Op.XOR, rd=T0, rs=T0, rt=PCP)),
                ErrorBranch(Op.JNZ),
            ]
        return items

    # CFCSS performs all its signature work at block entries; exits are
    # untouched.  That is precisely why it cannot see branch direction
    # (category A).

    def exit_items_direct(self, block: BlockInfo, target: int) -> list[Item]:
        return []

    def exit_items_cond(self, block: BlockInfo, taken: int, fallthrough: int,
                        cond: CondDesc) -> list[Item]:
        return []

    def exit_items_indirect(self, block: BlockInfo,
                            target_reg: int) -> list[Item]:
        raise NotImplementedError(
            "CFCSS cannot instrument dynamic branch targets; use an "
            "intra-procedural workload")
