"""Signature checking policies (paper Section 6, Figure 15).

The signature must be *updated* in every block — "if an error occurs,
and the signature becomes wrong, each update to PC' will also generate
a wrong signature" — but it need only be *checked* where the policy
says.  Less frequent checks trade error-report latency (and, for RET /
END, the ability to report errors that hang the program in a loop) for
performance.

Policies, in decreasing check frequency:

* ``ALLBB`` — check at every basic block,
* ``RET_BE`` — check at blocks ending in a backward branch (loop-closing
  blocks, to bound detection latency inside loops) and blocks with
  return instructions,
* ``RET`` — check only at blocks with return instructions,
* ``END`` — check only at the end of the application.

All policies also check at program-exit blocks, so even END reports the
error before the process finishes (unless the error causes a hang —
which the paper explicitly flags as the RET/END failure mode).
"""

from __future__ import annotations

import enum

from repro.cfg.basic_block import BasicBlock, ExitKind


class Policy(enum.Enum):
    """Where CHECK_SIG is instrumented.

    ``STORE`` is the optimization the paper attributes to Reis et al.:
    "checking the signature only in basic blocks that have store
    instructions" — the halt-on-failure-motivated placement that
    guards every point where corrupted state could become permanent.
    """

    ALLBB = "allbb"
    RET_BE = "ret-be"
    RET = "ret"
    END = "end"
    STORE = "store"

    def should_check(self, block: BasicBlock) -> bool:
        """Does this policy place a check at ``block``'s entry?"""
        is_exit = block.exit_kind in (ExitKind.HALT, ExitKind.EXIT)
        if self is Policy.ALLBB:
            return True
        if self is Policy.RET_BE:
            return (block.ends_in_return or block.ends_in_backward_branch
                    or is_exit)
        if self is Policy.RET:
            return block.ends_in_return or is_exit
        if self is Policy.END:
            return is_exit
        if self is Policy.STORE:
            return is_exit or block_has_store(block)
        raise AssertionError(self)


def block_has_store(block: BasicBlock) -> bool:
    """True when the block writes memory (st/stb/push/call's implicit
    push count; syscalls are output points and count too)."""
    from repro.isa.opcodes import Kind, Op
    for _, instr in block.instructions:
        if instr.op in (Op.ST, Op.STB, Op.PUSH, Op.SYSCALL):
            return True
        if instr.meta.kind in (Kind.CALL,):
            return True
    return False


#: The paper's four policies (Figure 15), in decreasing check frequency.
ALL_POLICIES = (Policy.ALLBB, Policy.RET_BE, Policy.RET, Policy.END)
