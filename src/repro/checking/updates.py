"""Conditional signature-update strategies (paper Figure 14).

At a two-way block exit, GEN_SIG must select the taken or the
fallthrough successor's signature *before* the branch executes.  The
paper evaluates two implementations:

* **Jcc** — insert a conditional jump (mirroring the guest branch) that
  skips a fix-up.  Cheaper, but the inserted branch is itself a new
  soft-error target, which is *unsafe* for ECF/EdgCF and exactly what
  RCF's regions protect (Figure 14's shadowed cells).
* **CMOVcc** — compute both candidates and select with a conditional
  move.  No new branch, but more instructions and a costlier ``cmov``.

Register-zero guest branches (``jrz``/``jrnz``) have no matching cmov,
so the CMOV style transparently falls back to the mirror-jump form for
them.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import CMOV_BY_COND, Op
from repro.isa.registers import AUX, PCP, T0, T1
from repro.checking.base import (CondDesc, Item, LabelMark, LoadSig, RawIns,
                                 SigExpr, UpdateStyle, fresh_label)


def additive_cond_update(taken_delta: SigExpr, fall_minus_taken: SigExpr,
                         cond: CondDesc, style: UpdateStyle,
                         fall_delta: SigExpr) -> list[Item]:
    """Update ``PCP += (cond ? taken_delta : fall_delta)``.

    Used by EdgCF and RCF, whose shadow PC accumulates additively so a
    wrong earlier signature keeps propagating (the GEN_SIG recursion of
    Section 4.4).
    """
    if style is UpdateStyle.CMOV and cond.is_flags:
        return [
            LoadSig(T0, fall_delta),
            RawIns(Instruction(op=Op.LEA3, rd=T0, rs=PCP, rt=T0)),
            LoadSig(T1, taken_delta),
            RawIns(Instruction(op=Op.LEA3, rd=T1, rs=PCP, rt=T1)),
            RawIns(Instruction(op=Op.MOV, rd=PCP, rs=T0)),
            RawIns(Instruction(op=CMOV_BY_COND[cond.cond], rd=PCP, rs=T1)),
        ]
    # Jcc style (also the fallback for register-zero conditions).
    skip = fresh_label("upd")
    return [
        LoadSig(T0, taken_delta),
        RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
        cond.mirror_branch(skip),
        LoadSig(T0, fall_minus_taken),
        RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
        LabelMark(skip),
    ]


def overwrite_cond_update(reg: int, taken_value: SigExpr,
                          fall_value: SigExpr, cond: CondDesc,
                          style: UpdateStyle) -> list[Item]:
    """Set ``reg = (cond ? taken_value : fall_value)``.

    Used by ECF, whose run-time adjusting signature RTS is freshly
    overwritten at every block exit (Figure 4's mov/cmovle pattern).
    """
    if style is UpdateStyle.CMOV and cond.is_flags:
        return [
            LoadSig(reg, fall_value),
            LoadSig(AUX, taken_value),
            RawIns(Instruction(op=CMOV_BY_COND[cond.cond], rd=reg, rs=AUX)),
        ]
    skip = fresh_label("upd")
    return [
        LoadSig(reg, taken_value),
        cond.mirror_branch(skip),
        LoadSig(reg, fall_value),
        LabelMark(skip),
    ]
