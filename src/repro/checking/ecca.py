"""ECCA — Enhanced Control-flow Checking using Assertions (Alkhalifa,
Nair, Krishnamurthy, Abraham; paper Section 3).

Each block gets a prime BID.  A block's exit sets the run-time
signature to the *product* of its successors' BIDs; the entry assertion
divides by a branch-free boolean "(signature mod BID) == 0", so a wrong
edge triggers a hardware divide-by-zero — the exception handler is the
error reporter ("the divide by zero exception handler is modified to
detect if the exception is a control-flow error").

Faithfully reproduced properties:

* expensive: the assertion costs a ``mod`` and a ``div`` (the paper:
  "the technique use expensive instructions (div and mul)"),
* mistaken branches (category A) are invisible: both successors' BIDs
  divide the product,
* jumps into a block's middle (category C) are invisible: the
  signature only changes at block boundaries,
* the signature register is *overwritten* (not accumulated) each block,
  so ECCA only makes sense with checks in every block (ALLBB) — there
  is no propagation to a later check.

Whole-CFG, flag-clobbering, intra-procedural — static rewriter only.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import PCP, T0, T1, T2
from repro.checking.base import (BlockInfo, CheckedDiv, CondDesc, Item,
                                 LoadSig, RawIns, Technique, const_expr)
from repro.checking.signatures import EccaSignatures


class ECCA(Technique):
    """Enhanced control-flow checking using assertions."""

    name = "ecca"
    requires_whole_cfg = True
    clobbers_flags = True

    def __init__(self, signatures: EccaSignatures, **kwargs):
        super().__init__(**kwargs)
        self.signatures = signatures

    def prologue(self, entry_block: int) -> list[Item]:
        return [LoadSig(PCP, const_expr(self.signatures.bid[entry_block]))]

    def entry_items(self, block: BlockInfo, check: bool) -> list[Item]:
        if not check:
            # ECCA has no separate "update" half at entries; without the
            # assertion there is nothing to do (and nothing propagates —
            # see module docstring).
            return []
        bid = self.signatures.bid[block.start]
        return [
            LoadSig(T0, const_expr(bid)),
            RawIns(Instruction(op=Op.MOD, rd=T1, rs=PCP, rt=T0)),
            # Branch-free T2 = (T1 == 0) ? 1 : 0
            RawIns(Instruction(op=Op.NEG, rd=T2, rs=T1)),
            RawIns(Instruction(op=Op.OR, rd=T2, rs=T2, rt=T1)),
            RawIns(Instruction(op=Op.SHRI, rd=T2, rs=T2, imm=31)),
            RawIns(Instruction(op=Op.XORI, rd=T2, rs=T2, imm=1)),
            # Divide by the boolean: traps exactly when the assertion
            # fails.  The backend records this address for the fault
            # classifier.
            CheckedDiv(rd=T2, rs=T0, rt=T2),
        ]

    def exit_items_direct(self, block: BlockInfo, target: int) -> list[Item]:
        product = self.signatures.bid.get(target, 1)
        return [LoadSig(PCP, const_expr(product))]

    def exit_items_cond(self, block: BlockInfo, taken: int, fallthrough: int,
                        cond: CondDesc) -> list[Item]:
        product = (self.signatures.bid.get(taken, 1)
                   * self.signatures.bid.get(fallthrough, 1))
        # One unconditional set accepting either successor — the source
        # of ECCA's category-A blindness.
        return [LoadSig(PCP, const_expr(product))]

    def exit_items_indirect(self, block: BlockInfo,
                            target_reg: int) -> list[Item]:
        raise NotImplementedError(
            "ECCA cannot instrument dynamic branch targets; use an "
            "intra-procedural workload")
