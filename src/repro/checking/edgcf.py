"""EdgCF — the Edge Control-Flow checking technique (paper Section 3.1).

Invariant (Figure 6): *on a control-flow edge* the shadow PC holds the
target block's signature; *inside a block body* it holds zero.

* head (entry): ``PC' -= sig(B)`` — transforms the incoming edge value
  to 0; CHECK_SIG is ``PC' == 0`` (a single flagless ``jrnz``),
* tail (exit): ``PC' += sig(next)`` selected per the actual branch
  condition, or folded from the captured dynamic target for indirect
  branches (Figure 7's ``xor PC', R1`` becomes ``lea3 PC', PC', R1`` —
  the paper itself swaps xor for lea-style arithmetic to avoid the
  EFLAGS side effect, Section 4.4/5.1).

GEN_SIG(x, y, z) = x − y + z with heads represented by their address
and tails by 0 — the exact function the paper proves sufficient and
necessary (Claim 1), in its add/sub variant.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import PCP, T0
from repro.checking.base import (BlockInfo, CondDesc, ErrorBranch, Item,
                                 LoadSig, RawIns, Technique, sig_of)
from repro.checking.updates import additive_cond_update


class EdgCF(Technique):
    """Edge control-flow checking."""

    name = "edgcf"

    def prologue(self, entry_block: int) -> list[Item]:
        # Arrive at the entry block as if over a legal edge.
        return [LoadSig(PCP, sig_of(entry_block))]

    def entry_items(self, block: BlockInfo, check: bool) -> list[Item]:
        items: list[Item] = [
            LoadSig(T0, sig_of(block.start)),
            RawIns(Instruction(op=Op.LSUB, rd=PCP, rs=PCP, rt=T0)),
        ]
        if check:
            # PC' must now be zero; jrnz is flagless, but — as the paper
            # discusses — itself unprotected: at this point PC' = 0,
            # which every block body shares.  RCF exists to fix this.
            items.append(ErrorBranch(Op.JRNZ, rd=PCP))
        return items

    def exit_items_direct(self, block: BlockInfo, target: int) -> list[Item]:
        return [
            LoadSig(T0, sig_of(target)),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
        ]

    def exit_items_cond(self, block: BlockInfo, taken: int, fallthrough: int,
                        cond: CondDesc) -> list[Item]:
        taken_sig = sig_of(taken)
        fall_sig = sig_of(fallthrough)
        return additive_cond_update(
            taken_delta=taken_sig,
            fall_minus_taken=fall_sig - taken_sig,
            cond=cond,
            style=self.update_style,
            fall_delta=fall_sig,
        )

    def exit_items_indirect(self, block: BlockInfo,
                            target_reg: int) -> list[Item]:
        # PC' is 0 here; adding the captured target address sets the edge
        # value directly — address-as-signature makes the mapping free.
        return [RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP,
                                   rt=target_reg))]


class NaiveEdgeCF(EdgCF):
    """The strawman of Figure 5: edge updates *without* the head update.

    The shadow PC carries the next block's signature across the edge and
    keeps it through the body (no zeroing at entry), so a jump into the
    middle of the *correct target* block is invisible.  Exists for the
    head-update ablation bench; not a technique the paper proposes.
    """

    name = "edgcf-naive"

    def prologue(self, entry_block: int) -> list[Item]:
        return [LoadSig(PCP, sig_of(entry_block))]

    def entry_items(self, block: BlockInfo, check: bool) -> list[Item]:
        if not check:
            return []
        items: list[Item] = [
            LoadSig(T0, sig_of(block.start)),
            RawIns(Instruction(op=Op.LSUB, rd=T0, rs=PCP, rt=T0)),
            ErrorBranch(Op.JRNZ, rd=T0),
        ]
        return items

    def exit_items_direct(self, block: BlockInfo, target: int) -> list[Item]:
        return [
            LoadSig(T0, sig_of(target) - sig_of(block.start)),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
        ]

    def exit_items_cond(self, block: BlockInfo, taken: int, fallthrough: int,
                        cond: CondDesc) -> list[Item]:
        here = sig_of(block.start)
        taken_sig = sig_of(taken)
        fall_sig = sig_of(fallthrough)
        return additive_cond_update(
            taken_delta=taken_sig - here,
            fall_minus_taken=fall_sig - taken_sig,
            cond=cond,
            style=self.update_style,
            fall_delta=fall_sig - here,
        )

    def exit_items_indirect(self, block: BlockInfo,
                            target_reg: int) -> list[Item]:
        return [
            LoadSig(T0, sig_of(block.start)),
            RawIns(Instruction(op=Op.LSUB, rd=PCP, rs=PCP, rt=T0)),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=target_reg)),
        ]
