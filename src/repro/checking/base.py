"""Common machinery for signature-monitoring techniques.

Every technique in the paper fits one mold (Section 4.2): a signature
generation function ``GEN_SIG`` instrumented at block exits and a
signature checking function ``CHECK_SIG`` at block entries.  This module
defines the backend-neutral representation both the static binary
rewriter and the dynamic binary translator consume:

* :class:`SigExpr` — a symbolic linear combination of block signatures.
  In DBT mode a block's signature is its guest address (known at
  translation time); in static-rewrite mode it is the block's *new*
  address, known only after layout, hence the symbolic form.
* :class:`Item` subclasses — an instrumentation micro-IR: concrete
  instructions, signature-constant loads, local forward branches, and
  branches to the error sink.
* :class:`Technique` — the abstract interface: what to emit at a block's
  entry (CHECK_SIG) and at each kind of block exit (GEN_SIG).

The flagless discipline (paper Section 5.1) is enforced here: a
technique declares whether its items may clobber FLAGS, and the unsafe
ones (CFCSS's xor-based check) are only usable by the static rewriter
on flag-clean guests.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.isa.flags import Cond
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import PCP as _PCP

#: The label every ErrorBranch targets; backends bind it to their error
#: sink (a TRAP stub in the DBT, a report routine in static mode).
ERROR_LABEL = "__cfc_error"


# -- signature expressions -----------------------------------------------


@dataclass(frozen=True)
class SigExpr:
    """``const + sum(sig(p) for p in plus) - sum(sig(m) for m in minus)``.

    The ``plus``/``minus`` entries are *guest block start addresses* used
    as signature keys; the backend supplies the key -> value mapping.
    """

    const: int = 0
    plus: tuple[int, ...] = ()
    minus: tuple[int, ...] = ()

    def resolve(self, sig_of: Callable[[int], int]) -> int:
        value = self.const
        for key in self.plus:
            value += sig_of(key)
        for key in self.minus:
            value -= sig_of(key)
        return value

    @property
    def is_concrete(self) -> bool:
        return not self.plus and not self.minus

    def __add__(self, other: "SigExpr") -> "SigExpr":
        return SigExpr(self.const + other.const, self.plus + other.plus,
                       self.minus + other.minus)

    def __neg__(self) -> "SigExpr":
        return SigExpr(-self.const, self.minus, self.plus)

    def __sub__(self, other: "SigExpr") -> "SigExpr":
        return self + (-other)


def sig_of(block_start: int) -> SigExpr:
    """Symbolic signature of the block starting at ``block_start``."""
    return SigExpr(plus=(block_start,))


def const_expr(value: int) -> SigExpr:
    return SigExpr(const=value)


# -- instrumentation micro-IR ------------------------------------------------


class Item:
    """Base class for instrumentation code items."""


@dataclass(frozen=True)
class RawIns(Item):
    """A fully concrete instruction, emitted verbatim."""

    instr: Instruction


@dataclass(frozen=True)
class LoadSig(Item):
    """Load a (possibly symbolic) 32-bit value into a register.

    Backends materialize this as a single ``movi`` when the resolved
    value fits in a signed 16-bit immediate, or as a ``movhi``+``movlo``
    pair otherwise.  The static rewriter always uses the fixed two-word
    form so block layout is independent of signature values.
    """

    rd: int
    expr: SigExpr


@dataclass(frozen=True)
class LocalBranch(Item):
    """A forward branch to a local label within the same snippet."""

    op: Op          #: a Jcc opcode, Op.JRZ/Op.JRNZ, or Op.JMP
    label: str
    rd: int = 0     #: register operand for jrz/jrnz


@dataclass(frozen=True)
class ErrorBranch(Item):
    """A branch to the technique's error sink.

    ``op`` is Op.JRNZ/Op.JRZ (flagless, safe w.r.t. guest flags) or a
    Jcc opcode (flag-reading; only CFCSS uses this, and only in static
    mode).
    """

    op: Op
    rd: int = 0


@dataclass(frozen=True)
class LabelMark(Item):
    """Defines a local label for :class:`LocalBranch` targets."""

    name: str


@dataclass(frozen=True)
class CheckedDiv(Item):
    """ECCA's assertion: ``div rd, rs, rt`` whose divide-by-zero trap IS
    the error report.  Backends record its final address so the fault
    classifier can tell an assertion firing from a genuine guest
    division by zero (the paper: "the divide by zero exception handler
    is modified to detect if the exception is a control-flow error")."""

    rd: int
    rs: int
    rt: int


# -- block description handed to techniques ----------------------------------


@dataclass(frozen=True)
class CondDesc:
    """Condition of a two-way block exit.

    Either a FLAGS condition (``cond`` set — the guest branch is a Jcc)
    or a register-zero condition (``reg_op``/``reg`` set — the guest
    branch is jrz/jrnz).
    """

    cond: Cond | None = None
    reg_op: Op | None = None
    reg: int = 0

    @property
    def is_flags(self) -> bool:
        return self.cond is not None

    def mirror_branch(self, label: str) -> LocalBranch:
        """A branch that takes exactly when the guest branch will take."""
        if self.is_flags:
            from repro.isa.opcodes import JCC_BY_COND
            return LocalBranch(JCC_BY_COND[self.cond], label)
        return LocalBranch(self.reg_op, label, rd=self.reg)


@dataclass(frozen=True)
class BlockInfo:
    """What a technique gets to know about the block it instruments."""

    start: int                     #: guest block start (= signature key)
    is_entry: bool = False         #: program entry block
    #: static predecessors' start addresses (whole-CFG techniques only)
    predecessors: tuple[int, ...] = ()
    #: static successors' start addresses (whole-CFG techniques only)
    successors: tuple[int, ...] = ()


class UpdateStyle(enum.Enum):
    """How conditional exits select the next signature (Figure 14)."""

    JCC = "jcc"        #: inserted conditional jump around a fix-up
    CMOV = "cmov"      #: conditional move between two candidates


# -- the technique interface ---------------------------------------------------


class Technique(ABC):
    """A signature-monitoring control-flow checking technique."""

    #: short name used in reports ("edgcf", "rcf", ...)
    name: str = "?"
    #: True when signatures must be assigned from the whole static CFG
    #: (CFCSS, ECCA) — such techniques cannot run under the on-demand
    #: DBT, exactly as the paper notes in Section 5.
    requires_whole_cfg: bool = False
    #: True when the technique's instrumentation may clobber FLAGS
    #: (CFCSS/ECCA); such techniques need flag-clean guests.
    clobbers_flags: bool = False
    #: Host registers holding the technique's signature state — what a
    #: forensics checkpoint snapshots.  PC' for everyone; ECF adds RTS.
    signature_registers: tuple[int, ...] = (_PCP,)

    def __init__(self, update_style: UpdateStyle = UpdateStyle.JCC):
        self.update_style = update_style

    # -- state initialisation ---------------------------------------------

    @abstractmethod
    def prologue(self, entry_block: int) -> list[Item]:
        """Code run once before the program entry block, establishing the
        signature-register invariant so the first check passes."""

    # -- CHECK_SIG ----------------------------------------------------------

    @abstractmethod
    def entry_items(self, block: BlockInfo, check: bool) -> list[Item]:
        """Instrumentation for the block's head: the signature update
        that folds the incoming signature plus, when ``check`` is True
        (policy-dependent), the CHECK_SIG comparison and error branch."""

    # -- GEN_SIG ----------------------------------------------------------------

    @abstractmethod
    def exit_items_direct(self, block: BlockInfo,
                          target: int) -> list[Item]:
        """GEN_SIG for a single statically-known successor."""

    @abstractmethod
    def exit_items_cond(self, block: BlockInfo, taken: int, fallthrough: int,
                        cond: CondDesc) -> list[Item]:
        """GEN_SIG for a conditional exit: select the taken or the
        fallthrough successor's signature according to ``cond``."""

    @abstractmethod
    def exit_items_indirect(self, block: BlockInfo,
                            target_reg: int) -> list[Item]:
        """GEN_SIG for a dynamic exit; ``target_reg`` holds the guest
        target address captured by the backend just before the branch.

        Address-as-signature makes this cheap (paper Section 3.1: "the
        address to signature mapping has no cost")."""

    # -- description -------------------------------------------------------------

    def describe(self) -> str:
        return f"{self.name} (update={self.update_style.value})"


_unique_labels = 0


def fresh_label(prefix: str) -> str:
    """Generate a snippet-local label name."""
    global _unique_labels
    _unique_labels += 1
    return f".{prefix}_{_unique_labels}"
