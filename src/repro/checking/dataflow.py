"""Data-flow checking by instruction duplication (SWIFT/EDDI style).

The paper's conclusion names this as the next step: "In the future we
will add data flow checking into our implementation and measure the
overall performance impact."  This module implements it as a
translation-time transformer the DBT applies to every original
instruction, composable with any control-flow technique:

* every computation is performed twice — once on the architectural
  registers and once on a *shadow register file*,
* the copies are compared (with flagless ``lsub``/``jrnz`` sequences)
  at the program's observable points: memory stores, compare
  instructions that feed branches, indirect-branch targets, and
  syscalls,
* a mismatch branches to a dedicated data-flow error stub.

Deviation from SWIFT, documented: SWIFT keeps the shadow values in
spare architectural registers (the paper's EM64T had them; R32's high
registers are taken by the control-flow state), so the shadow file
lives in a reserved memory region instead.  That makes the relative
overhead substantially higher than SWIFT's published numbers — the
mechanism, the detection behaviour, and the composition with
control-flow checking are what this module reproduces, and the bench
measures the combined cost honestly.

Ordering note: each duplicated computation runs *before* its original,
so the original's FLAGS side effects are the last ones standing and
guest flag semantics are preserved exactly.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, Kind, Op
from repro.isa.registers import DF0, DF1, DF2, NUM_GUEST_REGISTERS, SDW

#: Base of the in-memory shadow register file (16 words).  A dedicated
#: page, mapped read-write by the DBT when duplication is enabled.
SHADOW_BASE = 0x70000
SHADOW_SIZE = NUM_GUEST_REGISTERS * 4

#: Opcodes whose result can simply be copied to the shadow after
#: execution because their inputs are fault-immune (immediates).
_IMMEDIATE_MOVES = (Op.MOVI, Op.MOVHI)


def _sh(reg: int) -> int:
    """Shadow-file byte offset of guest register ``reg``."""
    return reg * 4


def _load_shadow(df: int, reg: int) -> Instruction:
    return Instruction(op=Op.LD, rd=df, rs=SDW, imm=_sh(reg))


def _store_shadow(src: int, reg: int) -> Instruction:
    return Instruction(op=Op.ST, rd=src, rs=SDW, imm=_sh(reg))


class DataFlowDuplication:
    """Per-instruction duplication transformer.

    ``transform(pc, instr)`` returns the protected instruction
    sequence, with check branches encoded as placeholder items the
    translator resolves against the block's data-flow error stub (see
    :data:`CHECK_BRANCH`).
    """

    #: marker object emitted in place of a ``jrnz DF2, <df-error>``
    CHECK_BRANCH = "df-check"

    def __init__(self) -> None:
        self.checks_emitted = 0

    # -- helpers -----------------------------------------------------------

    def _check(self, out: list, reg: int) -> None:
        """Compare guest ``reg`` against its shadow; branch on mismatch."""
        out.append(_load_shadow(DF2, reg))
        out.append(Instruction(op=Op.LSUB, rd=DF2, rs=DF2, rt=reg))
        out.append(self.CHECK_BRANCH)
        self.checks_emitted += 1

    def _guest(self, reg: int) -> bool:
        return 0 <= reg < NUM_GUEST_REGISTERS

    # -- the transformation -------------------------------------------------

    def transform(self, pc: int, instr: Instruction) -> list:
        """Protected sequence for one original instruction."""
        op = instr.op
        meta = instr.meta
        kind = meta.kind
        out: list = []

        if kind is Kind.ALU and meta.fmt is Fmt.R3:
            if op in (Op.CMP, Op.TEST):
                # Branch-feeding compares: verify the operands, then
                # execute the original (its FLAGS are what the branch
                # reads).
                self._check(out, instr.rs)
                self._check(out, instr.rt)
                out.append(instr)
                return out
            # rd = rs <op> rt — duplicate from shadow inputs first.
            out.append(_load_shadow(DF0, instr.rs))
            out.append(_load_shadow(DF1, instr.rt))
            out.append(Instruction(op=op, rd=DF2, rs=DF0, rt=DF1))
            out.append(_store_shadow(DF2, instr.rd))
            out.append(instr)
            return out

        if kind is Kind.ALU and meta.fmt is Fmt.RI:
            if op is Op.CMPI:
                self._check(out, instr.rs)
                out.append(instr)
                return out
            out.append(_load_shadow(DF0, instr.rs))
            out.append(Instruction(op=op, rd=DF2, rs=DF0, imm=instr.imm))
            out.append(_store_shadow(DF2, instr.rd))
            out.append(instr)
            return out

        if kind is Kind.ALU and meta.fmt is Fmt.R2:   # neg / not
            out.append(_load_shadow(DF0, instr.rs))
            out.append(Instruction(op=op, rd=DF2, rs=DF0))
            out.append(_store_shadow(DF2, instr.rd))
            out.append(instr)
            return out

        if op in _IMMEDIATE_MOVES:
            # Immune inputs: execute, then refresh the shadow copy.
            out.append(instr)
            out.append(_store_shadow(instr.rd, instr.rd))
            return out

        if op is Op.MOVLO:
            # Reads rd's high half: duplicate via the shadow copy.
            out.append(_load_shadow(DF2, instr.rd))
            out.append(Instruction(op=op, rd=DF2, imm=instr.imm))
            out.append(_store_shadow(DF2, instr.rd))
            out.append(instr)
            return out

        if op is Op.MOV:
            out.append(_load_shadow(DF2, instr.rs))
            out.append(_store_shadow(DF2, instr.rd))
            out.append(instr)
            return out

        if op in (Op.LEA, Op.LEA3, Op.LSUB):
            if meta.fmt is Fmt.RI:
                out.append(_load_shadow(DF0, instr.rs))
                out.append(Instruction(op=op, rd=DF2, rs=DF0,
                                       imm=instr.imm))
            else:
                out.append(_load_shadow(DF0, instr.rs))
                out.append(_load_shadow(DF1, instr.rt))
                out.append(Instruction(op=op, rd=DF2, rs=DF0, rt=DF1))
            out.append(_store_shadow(DF2, instr.rd))
            out.append(instr)
            return out

        if meta.cond is not None and meta.fmt is Fmt.R2:   # cmovcc
            # condition comes from FLAGS (already protected at the cmp);
            # duplicate the conditional move on the shadow file.
            out.append(_load_shadow(DF0, instr.rs))
            out.append(_load_shadow(DF2, instr.rd))
            out.append(Instruction(op=op, rd=DF2, rs=DF0))
            out.append(_store_shadow(DF2, instr.rd))
            out.append(instr)
            return out

        if op in (Op.LD, Op.LDB):
            # SWIFT rule: verify the address register, load once, copy
            # the loaded value into the shadow.
            self._check(out, instr.rs)
            out.append(instr)
            out.append(_store_shadow(instr.rd, instr.rd))
            return out

        if op in (Op.ST, Op.STB):
            # The store is an observable point: verify both the value
            # and the address before letting it commit.
            self._check(out, instr.rd)
            self._check(out, instr.rs)
            out.append(instr)
            return out

        if op is Op.PUSH:
            self._check(out, instr.rd)
            self._check(out, 15)
            out.append(instr)
            # shadow sp -= 4
            out.append(_load_shadow(DF2, 15))
            out.append(Instruction(op=Op.LEA, rd=DF2, rs=DF2, imm=-4))
            out.append(_store_shadow(DF2, 15))
            return out

        if op is Op.POP:
            self._check(out, 15)
            out.append(instr)
            out.append(_store_shadow(instr.rd, instr.rd))
            out.append(_load_shadow(DF2, 15))
            out.append(Instruction(op=Op.LEA, rd=DF2, rs=DF2, imm=4))
            out.append(_store_shadow(DF2, 15))
            return out

        if op is Op.SYSCALL:
            # Outputs leave the sphere of replication here: verify the
            # argument register first.
            self._check(out, 1)
            out.append(instr)
            out.append(_store_shadow(0, 0))   # r0 may be written
            return out

        # Anything else (halt, nop, ...) passes through unprotected.
        out.append(instr)
        return out

    def protect_indirect_target(self, reg: int) -> list:
        """Checks for a dynamic branch target register (jmpr/callr)."""
        out: list = []
        self._check(out, reg)
        return out

    def call_return_shadow_update(self) -> list:
        """Keep the shadow sp coherent across call/ret translations.

        The DBT's call translation pushes the return address itself, so
        the duplication layer only mirrors the sp adjustment."""
        return [
            _load_shadow(DF2, 15),
            Instruction(op=Op.LEA, rd=DF2, rs=DF2, imm=-4),
            _store_shadow(DF2, 15),
        ]

    def ret_shadow_update(self) -> list:
        return [
            _load_shadow(DF2, 15),
            Instruction(op=Op.LEA, rd=DF2, rs=DF2, imm=4),
            _store_shadow(DF2, 15),
        ]
