"""Exhaustive verification of the Section-4 correctness conditions.

For a model CFG and a formal technique, this module enumerates:

* **necessary condition** (no false positives): every legal execution
  path passes every check it meets,
* **sufficient condition** (no false negatives): for every legal
  prefix, every branch, and every wrong physical landing (any head —
  categories B/D — or any tail — the jump-to-the-middle categories
  C/E), some check along the legally-continued suffix fails.

The enumeration is exact over bounded path lengths: path prefixes up to
``prefix_len`` blocks and error suffixes up to ``suffix_len`` blocks
(long enough to traverse every loop in the model CFGs at least twice).
The paper proves EdgCF satisfies both conditions; the checker confirms
it mechanically and produces the concrete counterexample witnesses for
CFCSS, ECCA and ECF that Section 3 describes in prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.formal.model import ModelCfg, Node, SingleError
from repro.formal.techniques import FormalTechnique


@dataclass
class ConditionReport:
    """Outcome of the exhaustive check for one (cfg, technique) pair."""

    technique: str
    necessary_holds: bool = True
    sufficient_holds: bool = True
    false_positives: list[tuple[str, ...]] = field(default_factory=list)
    undetected_errors: list[SingleError] = field(default_factory=list)

    @property
    def detects_all_single_errors(self) -> bool:
        return self.necessary_holds and self.sufficient_holds


def _run_legal(technique: FormalTechnique, state, blocks: list[str],
               skip_entry_of_first: bool):
    """Run ``blocks`` legally from ``state``.

    Returns (final_state_before_last_exit, all_checks_passed,
    checks_met).  When ``skip_entry_of_first`` the first block is
    entered at its tail (a jump-to-the-middle landing): no entry
    update, no check.
    """
    ok = True
    checks_met = 0
    for index, block in enumerate(blocks):
        if index > 0 or not skip_entry_of_first:
            state = technique.entry_update(state, block)
            if technique.checks_at(block):
                checks_met += 1
                if not technique.check(state, block):
                    ok = False
        if index + 1 < len(blocks):
            state = technique.exit_update(state, block, blocks[index + 1])
    return state, ok, checks_met


def _legal_continuations(cfg: ModelCfg, start: str,
                         max_len: int) -> list[list[str]]:
    """All legal block sequences from ``start`` up to ``max_len``,
    extended to terminal blocks where possible."""
    complete: list[list[str]] = []
    stack = [[start]]
    while stack:
        path = stack.pop()
        successors = cfg.successors.get(path[-1], ())
        if not successors or len(path) >= max_len:
            complete.append(path)
            continue
        for successor in successors:
            stack.append(path + [successor])
    return complete


def check_conditions(technique: FormalTechnique,
                     prefix_len: int = 4,
                     suffix_len: int = 5) -> ConditionReport:
    """Exhaustively test the necessary and sufficient conditions."""
    cfg = technique.cfg
    report = ConditionReport(technique=technique.name)

    # ---- necessary: all legal paths pass all their checks ----
    for path in cfg.legal_paths(prefix_len + suffix_len):
        state = technique.initial(cfg.entry)
        _, ok, _ = _run_legal(technique, state, path,
                              skip_entry_of_first=False)
        if not ok:
            report.necessary_holds = False
            report.false_positives.append(tuple(path))

    # ---- sufficient: every single error is detected ----
    landings = cfg.all_nodes()
    for prefix in cfg.legal_paths(prefix_len):
        successors = cfg.successors.get(prefix[-1], ())
        if not successors:
            continue
        # State after legally executing the prefix, up to (but not
        # including) the last block's exit update.
        state0 = technique.initial(cfg.entry)
        state0, prefix_ok, _ = _run_legal(technique, state0, prefix,
                                          skip_entry_of_first=False)
        if not prefix_ok:
            continue  # already broken; necessary check reports it
        for logic in successors:
            # GEN_SIG ran for the logic target; the branch lands wrong.
            state1 = technique.exit_update(state0, prefix[-1], logic)
            for landing in landings:
                if landing.is_head and landing.block == logic:
                    continue  # correct transfer: not an error
                detected = _error_detected(technique, state1, landing,
                                           suffix_len)
                if not detected:
                    report.sufficient_holds = False
                    report.undetected_errors.append(SingleError(
                        prefix=tuple(prefix), logic=logic,
                        landing=landing))
    return report


def _error_detected(technique: FormalTechnique, state, landing: Node,
                    suffix_len: int) -> bool:
    """Continue legally from the landing; is the error always caught?

    The error escapes when some legal continuation passes all the
    checks it meets.  Continuations that meet *no* check — e.g. a
    landing in the tail of a terminal block, which runs off the end of
    the program before any instrumented head — are excluded per the
    paper's Assumption 2: "any control-flow error must finally reach at
    least one CHECK_SIG function".
    """
    cfg = technique.cfg
    for continuation in _legal_continuations(cfg, landing.block,
                                             suffix_len):
        _, ok, checks_met = _run_legal(
            technique, state, continuation,
            skip_entry_of_first=not landing.is_head)
        if checks_met == 0:
            continue  # outside Assumption 2's universe
        if ok:
            return False
    return True


#: How each empirical escape mode relates to the Section-4 formal
#: conditions.  Keyed by the escape-attribution reason slugs used in
#: :mod:`repro.forensics.attribution`; the notes give the formal
#: grounding a ``Divergence`` record alone cannot.
CONDITION_NOTES: dict[str, str] = {
    "no-check-reached": (
        "The erroneous suffix met zero CHECK_SIG sites, so it is "
        "outside Assumption 2's universe — the sufficient condition "
        "quantifies only over continuations that reach a check. "
        "Sparse check placement (RET/END-style policies) widens this "
        "gap; the formal checker excludes it, the campaign observes "
        "it."),
    "masked-before-update": (
        "The fault perturbed no GEN_SIG update and no committed "
        "architectural output: the signature walk was the legal one, "
        "so by the necessary condition every check it met passed. "
        "Nothing to detect — not a coverage loss."),
    "mistaken-branch": (
        "Category A: the branch took its *other legal* direction. "
        "Both directions carry valid signature updates, so no "
        "signature-only technique can flag the transfer; the paper "
        "excludes category A from the control-flow-error universe "
        "(it is a data error in the branch condition)."),
    "signature-aliasing": (
        "Checks were crossed after the error yet all passed: the "
        "corrupted signature walk aliased a legal one.  This is a "
        "concrete witness of the sufficient condition failing for "
        "the technique (cf. the CFCSS/ECCA counterexamples the "
        "formal checker enumerates)."),
    "data-fault-blindspot": (
        "A register data fault under a configuration without "
        "dataflow checking: signature monitoring only guards "
        "control flow, so the corruption propagates unseen unless "
        "it derails a branch."),
    "cross-context-escape": (
        "A multithreaded run without signature swapping: the "
        "formal conditions quantify over one uninterrupted signature "
        "walk, which preemption breaks unless the context switch "
        "saves and restores the signature registers with the rest of "
        "the thread state.  Corrupting a switched-out thread's saved "
        "signature register is then invisible — the saved value is "
        "never carried back into the live walk, so no check ever "
        "confronts it.  Swapping restores Assumption 2's single-walk "
        "premise per thread and closes the escape."),
    "recovery-exhausted": (
        "Detection worked — the error branch fired — but the "
        "checkpoint/rollback harness could not re-execute to a clean "
        "finish (persistent fault, retry budget, or a corrupted "
        "region outside the recoverable bound).  A fail-stop, not a "
        "silent escape; the formal conditions say nothing about "
        "recovery, only detection."),
    "not-an-escape": (
        "The run was detected (or produced correct output); no "
        "coverage was lost."),
}


def classify_witness(cfg: ModelCfg, error: SingleError) -> str:
    """Branch-error category of an undetected-error witness."""
    source = error.prefix[-1]
    if landing_is_other_direction(cfg, source, error.logic,
                                  error.landing):
        return "A"
    same = error.landing.block == source
    if error.landing.is_head:
        return "B" if same else "D"
    return "C" if same else "E"


def landing_is_other_direction(cfg: ModelCfg, source: str, logic: str,
                               landing: Node) -> bool:
    """Is the landing the branch's *other* legal direction (category A:
    a mistaken branch)?"""
    if not landing.is_head:
        return False
    others = [s for s in cfg.successors.get(source, ()) if s != logic]
    return landing.block in others
