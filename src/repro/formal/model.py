"""The formal control-flow checking model (paper Section 4).

Programs are modelled as basic blocks split into *head* and *tail*
halves (Figure 10): the head carries the entry-instrumentation
(CHECK_SIG and the entry half of GEN_SIG) and falls through to the
tail, which carries the original instructions and the exit half of
GEN_SIG.  Control-flow errors happen only at tail exits, and a
jump-to-the-middle of block B is modelled as a transfer straight to
``Bt`` — skipping ``Bh`` and everything instrumented there.

The execution path formalism follows Definition 3: a path is a block
sequence B_0..B_n where B_{i+1} is the *physical* target of B_i's
branch and T_{i+1} its *logic* target; the checking problem is deciding
``T_{i+1} = B_{i+1}`` for all i.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    """One model node: the head or the tail of a block."""

    block: str
    half: str          # "head" | "tail"

    @property
    def is_head(self) -> bool:
        return self.half == "head"

    def __str__(self) -> str:
        return f"{self.block}{'h' if self.is_head else 't'}"


@dataclass
class ModelCfg:
    """A small whole-program CFG for the formal analysis."""

    #: block name -> list of successor block names (logic targets of the
    #: block's branch; one entry per legal direction)
    successors: dict[str, list[str]]
    entry: str = "B0"
    #: block name -> signature address (unique, nonzero, spaced by 4
    #: like real word-aligned block addresses)
    addresses: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.addresses:
            self.addresses = {
                name: 0x1000 + 8 * index
                for index, name in enumerate(sorted(self.successors))
            }

    @property
    def blocks(self) -> list[str]:
        return sorted(self.successors)

    def head(self, block: str) -> Node:
        return Node(block, "head")

    def tail(self, block: str) -> Node:
        return Node(block, "tail")

    def all_nodes(self) -> list[Node]:
        nodes = []
        for block in self.blocks:
            nodes.append(self.head(block))
            nodes.append(self.tail(block))
        return nodes

    def address(self, block: str) -> int:
        return self.addresses[block]

    def legal_paths(self, max_len: int) -> list[list[str]]:
        """All legal block sequences from the entry, up to ``max_len``
        blocks (paths through blocks without successors end there)."""
        paths: list[list[str]] = []
        stack = [[self.entry]]
        while stack:
            path = stack.pop()
            paths.append(path)
            if len(path) >= max_len:
                continue
            for successor in self.successors.get(path[-1], ()):
                stack.append(path + [successor])
        return paths


@dataclass(frozen=True)
class SingleError:
    """One injected control-flow error in a model execution.

    After executing ``prefix`` legally, the branch at the end of
    ``prefix[-1]`` has logic target ``logic`` but physically lands on
    ``landing`` (a head — categories B/D — or a tail — the
    jump-to-the-middle categories C/E).  Execution then continues
    legally from the landing block.
    """

    prefix: tuple[str, ...]
    logic: str
    landing: Node

    def __str__(self) -> str:
        return (f"{'->'.join(self.prefix)} =X=> {self.landing} "
                f"(logic {self.logic})")


def diamond_cfg() -> ModelCfg:
    """The Figure-1 shaped CFG: B1 -> {B2, B3} -> B4."""
    return ModelCfg(successors={
        "B1": ["B2", "B3"],
        "B2": ["B4"],
        "B3": ["B4"],
        "B4": [],
    }, entry="B1")


def loop_cfg() -> ModelCfg:
    """Entry, a two-block loop, and an exit block."""
    return ModelCfg(successors={
        "B0": ["B1"],
        "B1": ["B2"],
        "B2": ["B1", "B3"],
        "B3": [],
    }, entry="B0")


def fanin_cfg() -> ModelCfg:
    """Two independent branches converging — the CFCSS aliasing shape:
    B1 and B2 are both predecessors of B4 *and* of B5, forcing their
    signatures into one class."""
    return ModelCfg(successors={
        "B1": ["B4", "B5"],
        "B2": ["B4", "B5"],
        "B0": ["B1", "B2"],
        "B4": ["B6"],
        "B5": ["B6"],
        "B6": [],
    }, entry="B0")
