"""The formal control-flow checking model of paper Section 4:
head/tail block splitting, execution paths, abstract GEN_SIG/CHECK_SIG
technique models, and an exhaustive checker for the sufficient and
necessary single-error detection conditions."""

from repro.formal.model import (ModelCfg, Node, SingleError, diamond_cfg,
                                fanin_cfg, loop_cfg)
from repro.formal.techniques import (FORMAL_TECHNIQUES, FormalCFCSS,
                                     FormalECCA, FormalECF, FormalEdgCF,
                                     FormalRCF, FormalTechnique)
from repro.formal.conditions import (ConditionReport, check_conditions,
                                     classify_witness)

__all__ = [
    "ModelCfg", "Node", "SingleError", "diamond_cfg", "fanin_cfg",
    "loop_cfg",
    "FORMAL_TECHNIQUES", "FormalCFCSS", "FormalECCA", "FormalECF",
    "FormalEdgCF", "FormalRCF", "FormalTechnique",
    "ConditionReport", "check_conditions", "classify_witness",
]
