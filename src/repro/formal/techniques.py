"""Abstract GEN_SIG / CHECK_SIG models of each technique (Section 4.2).

Each model carries signature state through a model execution:

* ``initial(entry)`` — state before the entry block's head,
* ``entry_update(state, physical_block)`` — the head half of GEN_SIG.
  It runs only when control actually passes through the head; a
  jump-to-the-middle skips it.  Note it can only depend on the block
  control *landed on* — this is where CFCSS/ECCA live entirely, and why
  they cannot satisfy the sufficient condition (it must depend on the
  logic target).
* ``exit_update(state, block, logic_target)`` — the tail half of
  GEN_SIG; depends on the logic target (for techniques that do).
* ``check(state, block)`` — CHECK_SIG at the tail entry; returns True
  when the state is acceptable (no error reported).
* ``checks_at(block)`` — whether this technique places a check there
  (models the ALLBB placement; policy variants restrict it).
"""

from __future__ import annotations

from repro.formal.model import ModelCfg

#: Body-region offset used by the RCF model (paper Section 3.2).
RCF_BODY_OFFSET = 1


class FormalTechnique:
    """Base class; subclasses implement the four hooks."""

    name = "?"

    def __init__(self, cfg: ModelCfg):
        self.cfg = cfg

    def initial(self, entry: str):
        raise NotImplementedError

    def entry_update(self, state, block: str):
        return state

    def exit_update(self, state, block: str, logic_target: str):
        return state

    def check(self, state, block: str) -> bool:
        raise NotImplementedError

    def checks_at(self, block: str) -> bool:
        return True


class FormalEdgCF(FormalTechnique):
    """EdgCF: GEN(x, y, z) = x − y + z with heads represented by their
    address and tails by 0 (the function of Claim 1)."""

    name = "edgcf"

    def initial(self, entry: str):
        return self.cfg.address(entry)

    def entry_update(self, state, block: str):
        return state - self.cfg.address(block)     # -> 0 in the body

    def exit_update(self, state, block: str, logic_target: str):
        return state + self.cfg.address(logic_target)

    def check(self, state, block: str) -> bool:
        return state == 0


class FormalRCF(FormalTechnique):
    """RCF: like EdgCF but the body region keeps a distinct signature
    sig(B)+1 instead of the shared 0."""

    name = "rcf"

    def initial(self, entry: str):
        return self.cfg.address(entry)

    def entry_update(self, state, block: str):
        # The entrance-region -> body-region transition.  In the real
        # code the check compares PC' against sig(B) *before* this
        # transition; checking state == sig(B)+1 after it is the same
        # predicate, which lets the model use one evaluation order for
        # every technique (entry_update, then check).
        return state + RCF_BODY_OFFSET

    def exit_update(self, state, block: str, logic_target: str):
        return (state + self.cfg.address(logic_target)
                - self.cfg.address(block) - RCF_BODY_OFFSET)

    def check(self, state, block: str) -> bool:
        return state == self.cfg.address(block) + RCF_BODY_OFFSET


class FormalECF(FormalTechnique):
    """ECF: state <PC', RTS>; head folds RTS, tail overwrites RTS with
    the logic-target delta (Figure 4)."""

    name = "ecf"

    def initial(self, entry: str):
        return (self.cfg.address(entry), 0)

    def entry_update(self, state, block: str):
        pcp, rts = state
        return (pcp + rts, 0)

    def exit_update(self, state, block: str, logic_target: str):
        # RTS gets the statically-computed delta between this block's
        # signature and the logic target's (Figure 4's L0_to_L1).
        pcp, _ = state
        return (pcp, self.cfg.address(logic_target)
                - self.cfg.address(block))

    def check(self, state, block: str) -> bool:
        pcp, _ = state
        return pcp == self.cfg.address(block)


class FormalCFCSS(FormalTechnique):
    """CFCSS: xor signatures assigned over predecessor classes; the
    whole GEN_SIG lives in the entry update and depends only on the
    landed-on block — failing the sufficient condition's dependence on
    the logic target."""

    name = "cfcss"

    def __init__(self, cfg: ModelCfg):
        super().__init__(cfg)
        # Union-find over predecessors of fan-in blocks.
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            if parent[x] != x:
                parent[x] = find(parent[x])
            return parent[x]

        preds: dict[str, list[str]] = {}
        for block, succs in cfg.successors.items():
            for successor in succs:
                preds.setdefault(successor, []).append(block)
        for block, plist in preds.items():
            for other in plist[1:]:
                ra, rb = find(plist[0]), find(other)
                if ra != rb:
                    parent[rb] = ra
        class_sig: dict[str, int] = {}
        self.sig: dict[str, int] = {}
        next_sig = 1
        for block in cfg.blocks:
            root = find(block)
            if root not in class_sig:
                class_sig[root] = next_sig
                next_sig += 1
            self.sig[block] = class_sig[root]
        self.d_value: dict[str, int] = {}
        for block in cfg.blocks:
            plist = preds.get(block, [])
            pred_sig = self.sig[plist[0]] if plist else 0
            self.d_value[block] = pred_sig ^ self.sig[block]

    def initial(self, entry: str):
        # Seed so the entry block's xor lands on its signature — the
        # entry may itself have predecessors (a loop back to it), in
        # which case d(entry) was computed from them, not from 0.
        return self.sig[entry] ^ self.d_value[entry]

    def entry_update(self, state, block: str):
        return state ^ self.d_value[block]

    def check(self, state, block: str) -> bool:
        return state == self.sig[block]


class FormalECCA(FormalTechnique):
    """ECCA: prime block ids, exits set the product of the successors'
    ids, entries assert divisibility."""

    name = "ecca"

    _PRIMES = (3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53)

    def __init__(self, cfg: ModelCfg):
        super().__init__(cfg)
        self.bid = {block: self._PRIMES[index]
                    for index, block in enumerate(cfg.blocks)}

    def initial(self, entry: str):
        return self.bid[entry]

    def exit_update(self, state, block: str, logic_target: str):
        # ECCA sets the product of *all* successors (it cannot depend on
        # the branch direction) — the source of its category-A miss.
        product = 1
        for successor in self.cfg.successors.get(block, ()):
            product *= self.bid[successor]
        return product if product != 1 else self.bid.get(logic_target, 1)

    def check(self, state, block: str) -> bool:
        return state % self.bid[block] == 0


FORMAL_TECHNIQUES = {
    cls.name: cls
    for cls in (FormalEdgCF, FormalRCF, FormalECF, FormalCFCSS,
                FormalECCA)
}
