"""Cross-process trace correlation and Chrome trace-event export.

A campaign is three nested layers of work in different processes: the
service job (orchestrator worker thread), the campaign chunks it fans
out (parent executor), and the individual fault runs (pool worker
processes).  This module gives each layer a span with a shared
``trace_id`` and a ``parent_span`` link, and turns the recorded spans
into Chrome trace-event JSON that loads directly in Perfetto or
``chrome://tracing``.

Correlation is **deterministic**: span ids are derived by hashing
``trace_id / parent / kind / index``, so a campaign run serially, in
parallel, or resumed from its journal produces the *same* span ids
for the same chunks and runs — traces can be diffed across
executions just like the journals themselves.

The raw spans live in a **sidecar** JSONL file next to the campaign
journal (``<journal>.trace.jsonl``), never in the journal itself: the
journal's byte-identity contract (a service job's journal equals the
CLI run's, byte for byte) must not see wall-clock timings.  The
sidecar follows the forensics bundle's placement convention.

Chrome trace-event fields emitted (the subset Perfetto needs):
``name``, ``ph`` (``"X"`` complete events, ``"M"`` metadata), ``ts``
and ``dur`` in microseconds, ``pid``/``tid`` picking the track, and
``args`` carrying ``trace_id``/``span_id``/``parent_span``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

#: Sidecar suffix, appended to the campaign journal path.
TRACE_SUFFIX = ".trace.jsonl"


def trace_sidecar_path(journal_path: str) -> str:
    """The trace sidecar next to a campaign journal."""
    return str(journal_path) + TRACE_SUFFIX


def derive_span_id(trace_id: str, parent: str, kind: str,
                   index) -> str:
    """Deterministic 16-hex span id for one unit of work."""
    text = f"{trace_id}/{parent}/{kind}/{index}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """A span's identity, passed down the job -> chunk -> run chain."""

    trace_id: str
    span_id: str
    parent_span: str | None = None

    @classmethod
    def root(cls, trace_id: str) -> "TraceContext":
        return cls(trace_id=trace_id,
                   span_id=derive_span_id(trace_id, "", "root", 0))

    @classmethod
    def for_campaign(cls, program_digest: str,
                     config_key) -> "TraceContext":
        """Deterministic root context for a CLI campaign: derived from
        the same (program digest, config key) identity the journal
        uses, so a resumed campaign continues its original trace."""
        trace_id = hashlib.sha256(
            f"{program_digest}/{config_key}".encode()).hexdigest()[:16]
        return cls.root(trace_id)

    def child(self, kind: str, index) -> "TraceContext":
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, self.span_id, kind,
                                   index),
            parent_span=self.span_id)

    def to_json(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_span": self.parent_span}

    @classmethod
    def from_json(cls, data: dict) -> "TraceContext":
        return cls(trace_id=data["trace_id"], span_id=data["span_id"],
                   parent_span=data.get("parent_span"))


def append_entry(path: str, entry: dict) -> None:
    """Append one span entry to a trace sidecar (atomic enough:
    single ``write`` of one line, matching the journal's discipline)."""
    line = json.dumps(entry, sort_keys=True) + "\n"
    with open(path, "a") as handle:
        handle.write(line)


def read_entries(path: str) -> list[dict]:
    """All entries of a sidecar; torn tails are skipped, not fatal."""
    entries = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                continue  # torn tail (killed mid-append)
    return entries


def job_entry(ctx: TraceContext, name: str, t0: float, t1: float,
              **attrs) -> dict:
    """The top-level span: a service job or a CLI campaign."""
    entry = {"type": "job", "name": name, "t0": t0, "t1": t1,
             "pid": os.getpid(), **ctx.to_json()}
    entry.update(attrs)
    return entry


def chunk_entry(ctx: TraceContext, index: int, t0: float, t1: float,
                pid: int, runs: list[dict]) -> dict:
    """One executed chunk plus its per-run child spans.

    ``runs`` entries carry ``i`` (global spec index), ``t0`` and
    ``dur`` seconds; run span ids are derived here so workers never
    need to know their chunk index.
    """
    chunk_ctx = ctx.child("chunk", index)
    spans = []
    for run in runs:
        run_ctx = chunk_ctx.child("run", run["i"])
        span = {"i": run["i"], "t0": run["t0"], "dur": run["dur"],
                "span_id": run_ctx.span_id}
        if "outcome" in run:
            span["outcome"] = run["outcome"]
        spans.append(span)
    return {"type": "chunk", "index": index, "t0": t0, "t1": t1,
            "pid": pid, "runs": spans, **chunk_ctx.to_json()}


# -- Chrome trace-event export ----------------------------------------------


def _us(seconds: float) -> int:
    return int(round(seconds * 1e6))


def to_chrome_trace(entries: list[dict]) -> dict:
    """Sidecar entries -> Chrome trace-event JSON (dict form).

    Each process gets its own ``pid`` track; the job span sits on the
    parent process track, each chunk and its runs on the worker
    process that executed them.  Within a track, spans nest by
    ``ts``/``dur`` containment, which holds because a worker runs its
    chunks (and a chunk its runs) sequentially.
    """
    events: list[dict] = []
    pids: dict[int, str] = {}

    def note_pid(pid: int, role: str) -> None:
        pids.setdefault(pid, role)

    # A requeued job (or a resumed CLI campaign) appends a fresh span
    # line per execution attempt under the same deterministic id; the
    # last one wins so the trace carries each span exactly once.
    deduped: dict = {}
    for order, entry in enumerate(entries):
        key = entry.get("span_id")
        deduped[key if key is not None else ("raw", order)] = entry
    entries = list(deduped.values())

    for entry in entries:
        if entry.get("type") == "job":
            pid = entry.get("pid", 0)
            note_pid(pid, f"campaign {entry.get('name', '?')}")
            events.append({
                "name": entry.get("name", "job"),
                "cat": "job", "ph": "X",
                "ts": _us(entry["t0"]),
                "dur": max(1, _us(entry["t1"] - entry["t0"])),
                "pid": pid, "tid": 0,
                "args": {
                    "trace_id": entry["trace_id"],
                    "span_id": entry["span_id"],
                    "parent_span": entry.get("parent_span"),
                    **{key: value for key, value in entry.items()
                       if key in ("kind", "status", "job")},
                }})
        elif entry.get("type") == "chunk":
            pid = entry.get("pid", 0)
            note_pid(pid, "campaign worker")
            events.append({
                "name": f"chunk {entry['index']}",
                "cat": "chunk", "ph": "X",
                "ts": _us(entry["t0"]),
                "dur": max(1, _us(entry["t1"] - entry["t0"])),
                "pid": pid, "tid": 0,
                "args": {
                    "trace_id": entry["trace_id"],
                    "span_id": entry["span_id"],
                    "parent_span": entry.get("parent_span"),
                    "index": entry["index"],
                }})
            for run in entry.get("runs", ()):
                args = {"trace_id": entry["trace_id"],
                        "span_id": run["span_id"],
                        "parent_span": entry["span_id"],
                        "index": run["i"]}
                if "outcome" in run:
                    args["outcome"] = run["outcome"]
                events.append({
                    "name": f"run {run['i']}",
                    "cat": "run", "ph": "X",
                    "ts": _us(run["t0"]),
                    "dur": max(1, _us(run["dur"])),
                    "pid": pid, "tid": 0,
                    "args": args})
    # Widen parents over their children: a resumed campaign (or a
    # requeued service job) keeps first-attempt chunk spans in the
    # sidecar while the surviving job line only covers the final
    # attempt's window — the job span must still contain every chunk.
    by_span = {event["args"]["span_id"]: event for event in events}
    for event in events:
        child = event
        parent_id = child["args"].get("parent_span")
        while parent_id:
            parent = by_span.get(parent_id)
            if parent is None:
                break
            t0 = min(parent["ts"], child["ts"])
            t1 = max(parent["ts"] + parent["dur"],
                     child["ts"] + child["dur"])
            if t0 == parent["ts"] and t1 == parent["ts"] + parent["dur"]:
                break
            parent["ts"], parent["dur"] = t0, t1 - t0
            child = parent
            parent_id = child["args"].get("parent_span")
    metadata = [{"name": "process_name", "ph": "M", "pid": pid,
                 "tid": 0, "args": {"name": role}}
                for pid, role in sorted(pids.items())]
    return {"traceEvents": metadata + events,
            "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: dict) -> list[str]:
    """Structural validation; returns a list of problems (empty = ok).

    Checks the trace-event invariants the export promises: required
    fields on every event, ids on every span, and parent/child
    nesting — every span naming a ``parent_span`` that is present in
    the trace must lie within its parent's ``[ts, ts+dur]`` interval.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    spans: dict[str, dict] = {}
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event {i}: unexpected ph {ph!r}")
            continue
        for field_name in ("name", "pid", "tid"):
            if field_name not in event:
                problems.append(f"event {i}: missing {field_name}")
        if ph == "M":
            continue
        for field_name in ("ts", "dur"):
            if not isinstance(event.get(field_name), int):
                problems.append(
                    f"event {i}: {field_name} must be integer "
                    "microseconds")
        args = event.get("args", {})
        span_id = args.get("span_id")
        if not span_id or not args.get("trace_id"):
            problems.append(
                f"event {i} ({event.get('name')}): missing "
                "span_id/trace_id")
            continue
        if span_id in spans:
            problems.append(f"duplicate span_id {span_id}")
        spans[span_id] = event
    for span_id, event in spans.items():
        parent_id = event.get("args", {}).get("parent_span")
        if not parent_id or parent_id not in spans:
            continue
        parent = spans[parent_id]
        t0, t1 = event["ts"], event["ts"] + event["dur"]
        p0, p1 = parent["ts"], parent["ts"] + parent["dur"]
        # One-bucket slack: ts values are rounded independently.
        if t0 + 1 < p0 or t1 > p1 + 1:
            problems.append(
                f"span {span_id} ({event['name']}) "
                f"[{t0},{t1}] escapes parent "
                f"{parent_id} ({parent['name']}) [{p0},{p1}]")
    return problems


def export_chrome_trace(entries: list[dict], out_path: str) -> dict:
    """Write Chrome trace JSON; returns the trace dict."""
    trace = to_chrome_trace(entries)
    with open(out_path, "w") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return trace
