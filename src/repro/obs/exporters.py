"""Exporters: Prometheus text, JSONL events, and the stats report.

Every exporter consumes the plain-dict *snapshot* form produced by
:func:`repro.obs.snapshot` (registry instruments plus span aggregates),
so the same code serves a live registry, a worker drain, and a snapshot
file loaded back from disk by ``repro stats``.

Formats
-------
``prometheus_text``  the text exposition format (``# TYPE``/``# HELP``
                     headers, cumulative ``_bucket{le=...}`` series)
``jsonl_text``       one JSON object per metric/span-aggregate line —
                     the same journal-friendly shape as the PR-2
                     campaign journal, easy to ``grep``/``jq``
``render_stats``     the human report: counters, gauges, histogram
                     percentiles (p50/p90/p99) and span timings as
                     fixed-width tables via ``analysis.report``
"""

from __future__ import annotations

import json

from repro.analysis.report import format_table
from repro.obs.metrics import Histogram, bucket_upper_bound


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote and newline must be backslash-escaped or
    the line is unparseable."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{escape_label_value(value)}"'
                    for key, value in sorted(labels.items()))
    return "{" + body + "}"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)


def prometheus_text(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        header(entry["name"], "counter")
        lines.append(f"{entry['name']}"
                     f"{_label_suffix(entry.get('labels', {}))} "
                     f"{_format_value(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        header(entry["name"], "gauge")
        lines.append(f"{entry['name']}"
                     f"{_label_suffix(entry.get('labels', {}))} "
                     f"{_format_value(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = entry["name"]
        header(name, "histogram")
        labels = entry.get("labels", {})
        cumulative = 0
        for index, count in entry.get("buckets", ()):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(
                bucket_upper_bound(index))
            lines.append(f"{name}_bucket{_label_suffix(bucket_labels)} "
                         f"{cumulative}")
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(f"{name}_bucket{_label_suffix(inf_labels)} "
                     f"{entry['count']}")
        lines.append(f"{name}_sum{_label_suffix(labels)} "
                     f"{_format_value(entry['sum'])}")
        lines.append(f"{name}_count{_label_suffix(labels)} "
                     f"{entry['count']}")
    for entry in snapshot.get("spans", ()):
        header("span_seconds", "summary")
        labels = {"span": entry["name"]}
        lines.append(f"span_seconds_sum{_label_suffix(labels)} "
                     f"{_format_value(entry['total'])}")
        lines.append(f"span_seconds_count{_label_suffix(labels)} "
                     f"{entry['count']}")
    return "\n".join(lines) + "\n"


def jsonl_text(snapshot: dict) -> str:
    """One JSON object per line: metrics then span aggregates."""
    lines = []
    for kind in ("counters", "gauges", "histograms"):
        for entry in snapshot.get(kind, ()):
            record = {"type": kind[:-1]}
            record.update(entry)
            lines.append(json.dumps(record, sort_keys=True))
    for entry in snapshot.get("spans", ()):
        record = {"type": "span"}
        record.update(entry)
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def _labels_text(labels: dict) -> str:
    return ",".join(f"{key}={value}"
                    for key, value in sorted(labels.items())) or "-"


def _snapshot_histogram(entry: dict) -> Histogram:
    histogram = Histogram(entry["name"])
    histogram.merge_state(entry["count"], entry["sum"],
                          entry.get("buckets", ()))
    return histogram


#: Histogram names carrying the Section-6 detection-latency story,
#: rendered as their own ``repro stats`` section broken out by policy.
_LATENCY_HISTOGRAMS = (
    ("campaign_detection_latency_instructions", "instructions"),
    ("campaign_detection_latency_cycles", "cycles"),
)


def _latency_section(histograms: list) -> str | None:
    """Detection-latency percentiles by policy label (Figure-12-style:
    the sparser the checking policy, the longer the report delay)."""
    rows = []
    for name, unit in _LATENCY_HISTOGRAMS:
        entries = [e for e in histograms if e["name"] == name]
        entries.sort(key=lambda e: e.get("labels", {}).get("policy", ""))
        for entry in entries:
            histogram = _snapshot_histogram(entry)
            policy = entry.get("labels", {}).get("policy", "-")
            rows.append([policy, unit, entry["count"],
                         histogram.percentile(0.50),
                         histogram.percentile(0.90),
                         histogram.percentile(0.99)])
    if not rows:
        return None
    return format_table(
        ["policy", "unit", "detections", "p50", "p90", "p99"], rows,
        title="Detection latency (fault application -> error report)")


#: Rollback/re-execution cost histograms, broken out by policy in the
#: recovery section (sparser checking -> later detection -> longer
#: rollback distance).
_RECOVERY_HISTOGRAMS = (
    ("campaign_rollback_distance_instructions", "instructions"),
    ("campaign_reexec_cycles", "cycles"),
)


def _recovery_section(snapshot: dict) -> str | None:
    """Checkpoint/rollback recovery report (see docs/recovery.md):
    success rate by technique x policy, rollback-distance and
    re-execution percentiles, and checkpoint capture overhead."""
    counters = snapshot.get("counters", [])
    histograms = snapshot.get("histograms", [])
    tallies: dict = {}
    for entry in counters:
        if entry["name"] != "campaign_recovery_total":
            continue
        labels = entry.get("labels", {})
        key = (labels.get("technique", "-"), labels.get("policy", "-"))
        bucket = tallies.setdefault(key, {"recovered": 0, "failed": 0})
        bucket[labels.get("result", "failed")] += entry["value"]
    parts: list[str] = []
    if tallies:
        rows = []
        for (technique, policy), bucket in sorted(tallies.items()):
            total = bucket["recovered"] + bucket["failed"]
            rate = bucket["recovered"] / total if total else 0.0
            rows.append([technique, policy, bucket["recovered"],
                         bucket["failed"], f"{rate:.1%}"])
        parts.append(format_table(
            ["technique", "policy", "recovered", "failed", "success"],
            rows, title="Recovery outcomes (detections survived)"))
    rows = []
    for name, unit in _RECOVERY_HISTOGRAMS:
        entries = [e for e in histograms if e["name"] == name]
        entries.sort(key=lambda e: e.get("labels", {}).get("policy", ""))
        for entry in entries:
            histogram = _snapshot_histogram(entry)
            policy = entry.get("labels", {}).get("policy", "-")
            rows.append([policy, unit, entry["count"],
                         histogram.percentile(0.50),
                         histogram.percentile(0.90),
                         histogram.percentile(0.99)])
    if rows:
        parts.append(format_table(
            ["policy", "unit", "rollbacks", "p50", "p90", "p99"], rows,
            title="Rollback distance / re-execution cost"))
    totals = {e["name"]: e["value"] for e in counters
              if e["name"].startswith("recovery_")}
    captured = totals.get("recovery_checkpoints_total", 0)
    if captured:
        seconds = totals.get("recovery_capture_seconds_total", 0.0)
        pages = totals.get("recovery_pages_preserved_total", 0)
        parts.append(
            f"Checkpoint capture: {captured:.0f} checkpoint(s), "
            f"{pages:.0f} pre-image page(s), "
            f"{seconds * 1e6 / captured:.1f} us/capture "
            f"({seconds:.4f}s total)")
    if not parts:
        return None
    return "\n\n".join(parts)


def render_stats(snapshot: dict) -> str:
    """The human ``repro stats`` report."""
    sections: list[str] = []
    counters = snapshot.get("counters", [])
    if counters:
        sections.append(format_table(
            ["counter", "labels", "value"],
            [[e["name"], _labels_text(e.get("labels", {})), e["value"]]
             for e in counters],
            title="Counters"))
    gauges = snapshot.get("gauges", [])
    if gauges:
        sections.append(format_table(
            ["gauge", "labels", "value"],
            [[e["name"], _labels_text(e.get("labels", {})), e["value"]]
             for e in gauges],
            title="Gauges"))
    histograms = snapshot.get("histograms", [])
    if histograms:
        rows = []
        for entry in histograms:
            histogram = _snapshot_histogram(entry)
            rows.append([entry["name"],
                         _labels_text(entry.get("labels", {})),
                         entry["count"], histogram.mean,
                         histogram.percentile(0.50),
                         histogram.percentile(0.90),
                         histogram.percentile(0.99)])
        sections.append(format_table(
            ["histogram", "labels", "count", "mean", "p50", "p90",
             "p99"], rows, title="Histograms"))
        latency = _latency_section(histograms)
        if latency:
            sections.append(latency)
    recovery = _recovery_section(snapshot)
    if recovery:
        sections.append(recovery)
    spans = snapshot.get("spans", [])
    if spans:
        rows = []
        for entry in spans:
            mean = entry["total"] / entry["count"] if entry["count"] \
                else 0.0
            rows.append([entry["name"], entry["count"],
                         entry["total"], mean, entry["max"]])
        sections.append(format_table(
            ["span", "count", "total-s", "mean-s", "max-s"], rows,
            title="Spans"))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def write_metrics(path: str, snapshot: dict) -> None:
    """Write a snapshot to ``path``; the suffix picks the format.

    ``.prom`` -> Prometheus text, ``.jsonl`` -> JSONL events, anything
    else -> the JSON snapshot itself (the format ``repro stats`` and
    :func:`load_snapshot` read back).
    """
    if path.endswith(".prom"):
        text = prometheus_text(snapshot)
    elif path.endswith(".jsonl"):
        text = jsonl_text(snapshot)
    else:
        text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    with open(path, "w") as handle:
        handle.write(text)


def load_snapshot(path: str) -> dict:
    """Load a JSON snapshot previously written by ``write_metrics``."""
    with open(path) as handle:
        try:
            return json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path} is not a JSON metrics snapshot (use a path "
                "without .prom/.jsonl suffix with --metrics to get "
                f"one): {exc}") from None
