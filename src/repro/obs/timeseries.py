"""Rolling-window time series: the dashboard's trend layer.

The metrics registry (:mod:`repro.obs.metrics`) answers "how much,
total" — monotonic counters and histograms that only ever grow.  A
live dashboard needs the *derivative*: runs per second over the last
two minutes, detections by kind as they happen, queue depth as a
curve.  :class:`RollingWindow` keeps that with a ring of per-second
buckets: ``record`` is O(1) (one modulo, one compare, one add) and
memory is fixed at ``seconds`` floats, no matter how long the process
lives or how fast events arrive.

The campaign hot paths are **not** instrumented here — the "off means
free" contract is untouched.  :class:`TimeSeriesHub` instead *derives*
series from the registry snapshots the service already takes: the
orchestrator's sampler thread calls :meth:`TimeSeriesHub.sample` about
once a second with the server-wide snapshot, and the hub diffs every
counter against its previous value, recording the delta into that
counter's window.  Gauges are recorded as point-in-time values.  No
guest instruction, no worker process, no campaign chunk ever touches a
window.

Wrap-around: bucket ``int(t) % capacity`` is reused for second ``t``;
a stored second-stamp per bucket detects staleness, so a window that
sat idle for longer than its span correctly reads as zeros rather
than re-serving minutes-old data.
"""

from __future__ import annotations

import threading
import time

#: Default window span in seconds (the dashboard shows two minutes).
DEFAULT_WINDOW_SECONDS = 120


class RollingWindow:
    """Ring of per-second buckets over a fixed trailing span.

    ``mode`` picks the bucket fold: ``"sum"`` accumulates (event
    counts, deltas), ``"max"`` keeps the bucket maximum and ``"last"``
    the most recent value (point-in-time gauges).
    """

    __slots__ = ("capacity", "mode", "_values", "_stamps")

    def __init__(self, seconds: int = DEFAULT_WINDOW_SECONDS,
                 mode: str = "sum"):
        if mode not in ("sum", "max", "last"):
            raise ValueError(f"unknown window mode {mode!r}")
        self.capacity = max(2, int(seconds))
        self.mode = mode
        self._values = [0.0] * self.capacity
        self._stamps = [-1] * self.capacity

    def record(self, value: float, now: float | None = None) -> None:
        """Fold ``value`` into the current second's bucket (O(1))."""
        second = int(time.time() if now is None else now)
        index = second % self.capacity
        if self._stamps[index] != second:
            self._stamps[index] = second
            self._values[index] = value
            return
        if self.mode == "sum":
            self._values[index] += value
        elif self.mode == "max":
            if value > self._values[index]:
                self._values[index] = value
        else:
            self._values[index] = value

    def series(self, now: float | None = None,
               seconds: int | None = None) -> list[list[float]]:
        """``[second, value]`` pairs, oldest first, zeros for gaps.

        The still-filling current second is included; buckets whose
        stamp does not match the second they would represent (idle
        gaps, wrapped-past data) read as 0.
        """
        second = int(time.time() if now is None else now)
        span = self.capacity if seconds is None \
            else min(self.capacity, max(1, int(seconds)))
        out = []
        for t in range(second - span + 1, second + 1):
            index = t % self.capacity
            value = self._values[index] if self._stamps[index] == t \
                else 0.0
            out.append([t, value])
        return out

    def total(self, now: float | None = None,
              seconds: int | None = None) -> float:
        return sum(value for _, value in self.series(now, seconds))

    def rate(self, now: float | None = None,
             seconds: int = 10) -> float:
        """Mean per-second value over the last ``seconds`` full
        buckets (the current, still-filling second is excluded so the
        rate does not sag at every bucket boundary)."""
        second = int(time.time() if now is None else now)
        points = self.series(second - 1, seconds)
        if not points:
            return 0.0
        return sum(value for _, value in points) / len(points)


def _series_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    body = ",".join(f"{key}={value}"
                    for key, value in sorted(labels.items()))
    return f"{name}{{{body}}}"


class TimeSeriesHub:
    """Named rolling windows plus a registry-snapshot differ.

    Two ways in:

    * :meth:`record` — direct O(1) recording into a named window
      (the orchestrator uses it for queue depth and running-job
      gauges it computes itself);
    * :meth:`sample` — feed a registry snapshot; every counter's
      delta against the previous sample is recorded into a window
      keyed by the counter's name (summed across labels) *and* by
      its full ``name{label=value}`` key, so the dashboard can plot
      both "runs/s" and "runs/s by outcome".  Gauges record their
      point value into a ``last``-mode window.

    Counter values in snapshots are monotonic per server lifetime;
    a delta going negative (registry replaced) resets the baseline
    for that key instead of recording garbage.

    Thread-safe: the sampler thread writes while dashboard requests
    read.
    """

    def __init__(self, seconds: int = DEFAULT_WINDOW_SECONDS):
        self.seconds = max(2, int(seconds))
        self._lock = threading.Lock()
        self._windows: dict[str, RollingWindow] = {}
        self._last_counters: dict[str, float] = {}

    def window(self, name: str, mode: str = "sum") -> RollingWindow:
        with self._lock:
            window = self._windows.get(name)
            if window is None:
                window = RollingWindow(self.seconds, mode=mode)
                self._windows[name] = window
            return window

    def record(self, name: str, value: float,
               now: float | None = None, mode: str = "sum") -> None:
        self.window(name, mode=mode).record(value, now)

    # -- snapshot sampling ------------------------------------------------

    def sample(self, snapshot: dict, now: float | None = None) -> None:
        """Diff a registry snapshot against the previous sample."""
        now = time.time() if now is None else now
        deltas: dict[str, float] = {}
        for entry in snapshot.get("counters", ()):
            key = _series_key(entry["name"], entry.get("labels", {}))
            value = entry["value"]
            previous = self._last_counters.get(key)
            self._last_counters[key] = value
            if previous is None or value < previous:
                continue  # first sight / registry reset: baseline only
            delta = value - previous
            if delta:
                deltas[key] = deltas.get(key, 0.0) + delta
                name = entry["name"]
                if name != key:  # labelled: also feed the aggregate
                    deltas[name] = deltas.get(name, 0.0) + delta
        for key, delta in deltas.items():
            self.record(key, delta, now)
        for entry in snapshot.get("gauges", ()):
            key = _series_key(entry["name"], entry.get("labels", {}))
            self.record(key, entry["value"], now, mode="last")

    def series(self, now: float | None = None,
               seconds: int | None = None) -> dict:
        """Every window's series, keyed by name (JSON-able)."""
        with self._lock:
            windows = dict(self._windows)
        return {name: window.series(now, seconds)
                for name, window in sorted(windows.items())}

    def rates(self, now: float | None = None,
              seconds: int = 10) -> dict:
        with self._lock:
            windows = dict(self._windows)
        return {name: window.rate(now, seconds)
                for name, window in sorted(windows.items())}
