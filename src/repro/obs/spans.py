"""Lightweight span tracing with parent/child nesting.

A span is one timed region of the stack — ``span("dbt.translate",
guest=addr)`` — measured on the monotonic clock.  Spans nest: the
recorder keeps an explicit stack, so each finished span knows its
parent and depth without any thread-local machinery (the reproduction's
processes are single-threaded; worker processes each install their own
recorder).

Finished spans land in a **bounded** in-memory ring buffer (oldest
evicted first; the ``dropped`` counter says how many) and, when a sink
path is configured, are appended to a JSONL event log — one object per
line, the same journal-friendly format PR 2 introduced for campaign
checkpoints.

Per-name aggregates (count / total / max seconds) are maintained
separately from the buffer, so campaign-scale runs keep accurate totals
even after the ring has wrapped, and so worker recorders can ship a
tiny mergeable summary instead of their whole buffer.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    start: float                 #: seconds since the recorder's origin
    duration: float              #: seconds
    span_id: int
    parent_id: int | None
    depth: int
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        entry = {"name": self.name, "start": round(self.start, 9),
                 "duration": round(self.duration, 9),
                 "span_id": self.span_id, "parent_id": self.parent_id,
                 "depth": self.depth}
        if self.attrs:
            entry["attrs"] = self.attrs
        return entry


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_recorder", "name", "attrs", "_start", "span_id",
                 "parent_id", "depth")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        recorder = self._recorder
        stack = recorder._stack
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        recorder._next_id += 1
        self.span_id = recorder._next_id
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._start
        recorder = self._recorder
        if recorder._stack and recorder._stack[-1] is self:
            recorder._stack.pop()
        recorder._finish(self, duration)


class _NullSpan:
    """Reusable, stateless no-op span (observability off)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Records finished spans to a bounded buffer and optional sink."""

    def __init__(self, capacity: int = 4096,
                 sink_path: str | None = None):
        self.capacity = max(1, capacity)
        self.buffer: deque[SpanRecord] = deque(maxlen=self.capacity)
        self.dropped = 0
        self.origin = time.perf_counter()
        #: name -> [count, total_seconds, max_seconds]
        self.aggregates: dict[str, list] = {}
        self._stack: list[_ActiveSpan] = []
        self._next_id = 0
        self._sink = open(sink_path, "a") if sink_path else None

    def span(self, name: str, **attrs) -> _ActiveSpan:
        return _ActiveSpan(self, name, attrs)

    def _finish(self, active: _ActiveSpan, duration: float) -> None:
        record = SpanRecord(
            name=active.name,
            start=active._start - self.origin, duration=duration,
            span_id=active.span_id, parent_id=active.parent_id,
            depth=active.depth, attrs=active.attrs)
        if len(self.buffer) == self.capacity:
            self.dropped += 1
        self.buffer.append(record)
        stats = self.aggregates.get(active.name)
        if stats is None:
            self.aggregates[active.name] = [1, duration, duration]
        else:
            stats[0] += 1
            stats[1] += duration
            stats[2] = max(stats[2], duration)
        if self._sink is not None:
            self._sink.write(json.dumps(record.to_json(),
                                        sort_keys=True) + "\n")

    # -- snapshot / merge ----------------------------------------------------

    def snapshot_aggregates(self) -> list[dict]:
        """Mergeable per-name summary, in deterministic name order."""
        return [{"name": name, "count": stats[0],
                 "total": stats[1], "max": stats[2]}
                for name, stats in sorted(self.aggregates.items())]

    def merge_aggregates(self, entries) -> None:
        for entry in entries:
            stats = self.aggregates.get(entry["name"])
            if stats is None:
                self.aggregates[entry["name"]] = [
                    entry["count"], entry["total"], entry["max"]]
            else:
                stats[0] += entry["count"]
                stats[1] += entry["total"]
                stats[2] = max(stats[2], entry["max"])

    def drain_aggregates(self) -> list[dict]:
        entries = self.snapshot_aggregates()
        self.aggregates.clear()
        self.buffer.clear()
        return entries

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None
