"""``repro.obs`` — metrics, spans, and campaign telemetry.

The observability subsystem the perf roadmap hangs off: a metrics
registry (:mod:`repro.obs.metrics`), span tracing
(:mod:`repro.obs.spans`) and exporters (:mod:`repro.obs.exporters`),
wired through the interpreter, the DBT, and the campaign engine.

Design rule: **off means free**.  Nothing is recorded — and the
interpreter hot loop takes no extra branch per instruction — unless a
registry has been installed with :func:`install` (usually via the CLI's
``--metrics``/``--trace`` flags or the :func:`session` context
manager).  Instrumentation sites either check ``get_registry() is
None`` or go through the module helpers below, which hand out shared
no-op instruments while observability is off.

Campaign fan-out: each worker process installs a ``worker=True``
registry, drains it after every chunk, and ships the snapshot back on
the existing result pipe; the supervisor's side merges the drains into
the campaign-level registry, so ``coverage --jobs 8 --metrics out.prom``
reports one coherent registry whose totals match a serial run exactly.

See ``docs/observability.md`` for the metric catalogue and span names.
"""

from __future__ import annotations

import contextlib

from repro.obs.metrics import (BUCKET_SHIFT, BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry, NULL_COUNTER,
                               NULL_GAUGE, NULL_HISTOGRAM, Timer,
                               bucket_index, bucket_upper_bound)
from repro.obs.spans import NULL_SPAN, SpanRecord, SpanRecorder

__all__ = [
    "BUCKETS", "BUCKET_SHIFT", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM",
    "NULL_SPAN", "SpanRecord", "SpanRecorder", "Timer", "bucket_index",
    "bucket_upper_bound", "counter", "drain_worker_snapshot", "enabled",
    "gauge", "get_recorder", "get_registry", "histogram", "install",
    "merge_snapshot", "session", "snapshot", "span", "uninstall",
]

#: The installed registry / recorder, or None (observability off).
_registry: MetricsRegistry | None = None
_recorder: SpanRecorder | None = None


def install(registry: MetricsRegistry,
            recorder: SpanRecorder | None = None) -> None:
    """Turn observability on (replacing any previous installation)."""
    global _registry, _recorder
    _registry = registry
    _recorder = recorder


def uninstall() -> None:
    """Turn observability off; instruments become no-ops again."""
    global _registry, _recorder
    if _recorder is not None:
        _recorder.close()
    _registry = None
    _recorder = None


def get_registry() -> MetricsRegistry | None:
    return _registry


def get_recorder() -> SpanRecorder | None:
    return _recorder


def enabled() -> bool:
    return _registry is not None


# -- instrument helpers (no-ops while off) ----------------------------------


def counter(name: str, help: str = "", **labels):
    if _registry is None:
        return NULL_COUNTER
    return _registry.counter(name, help=help, **labels)


def gauge(name: str, help: str = "", **labels):
    if _registry is None:
        return NULL_GAUGE
    return _registry.gauge(name, help=help, **labels)


def histogram(name: str, help: str = "", **labels):
    if _registry is None:
        return NULL_HISTOGRAM
    return _registry.histogram(name, help=help, **labels)


def span(name: str, **attrs):
    """A timed region: ``with obs.span("dbt.translate", guest=pc): ...``.

    Returns a shared no-op context manager while no recorder is
    installed, so call sites never need their own guard.
    """
    if _recorder is None:
        return NULL_SPAN
    return _recorder.span(name, **attrs)


# -- snapshots across the process boundary ----------------------------------


def snapshot() -> dict:
    """Snapshot the installed registry plus span aggregates."""
    if _registry is None:
        return {}
    snap = _registry.snapshot()
    snap["spans"] = (_recorder.snapshot_aggregates()
                     if _recorder is not None else [])
    return snap


def drain_worker_snapshot() -> dict | None:
    """Snapshot-and-reset a *worker* registry; None in the parent.

    Campaign workers call this after each chunk so their telemetry
    rides the result pipe exactly once.  The parent's own registry is
    never drained — its metrics are already in the right place.
    """
    if _registry is None or not _registry.worker:
        return None
    snap = _registry.drain()
    snap["spans"] = (_recorder.drain_aggregates()
                     if _recorder is not None else [])
    return snap


def merge_snapshot(snap: dict | None) -> None:
    """Fold a worker drain into the installed registry (no-op if off)."""
    if snap is None or _registry is None:
        return
    _registry.merge_snapshot(snap)
    if _recorder is not None:
        _recorder.merge_aggregates(snap.get("spans", ()))


@contextlib.contextmanager
def session(metrics_path: str | None = None,
            trace_path: str | None = None,
            span_capacity: int = 4096):
    """Observability for one command: install, run, export, uninstall.

    ``metrics_path`` picks the export format by suffix (``.prom``
    Prometheus text, ``.jsonl`` JSONL events, else the JSON snapshot
    ``repro stats`` reads); ``trace_path`` streams finished spans to a
    JSONL event log as they happen.  With neither path set this is a
    no-op — observability stays off.
    """
    if metrics_path is None and trace_path is None:
        yield None
        return
    registry = MetricsRegistry()
    recorder = SpanRecorder(capacity=span_capacity,
                            sink_path=trace_path)
    install(registry, recorder)
    try:
        yield registry
    finally:
        snap = snapshot()
        uninstall()
        if metrics_path is not None:
            from repro.obs.exporters import write_metrics
            write_metrics(metrics_path, snap)
