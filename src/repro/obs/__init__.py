"""``repro.obs`` — metrics, spans, and campaign telemetry.

The observability subsystem the perf roadmap hangs off: a metrics
registry (:mod:`repro.obs.metrics`), span tracing
(:mod:`repro.obs.spans`) and exporters (:mod:`repro.obs.exporters`),
wired through the interpreter, the DBT, and the campaign engine.

Design rule: **off means free**.  Nothing is recorded — and the
interpreter hot loop takes no extra branch per instruction — unless a
registry has been installed with :func:`install` (usually via the CLI's
``--metrics``/``--trace`` flags or the :func:`session` context
manager).  Instrumentation sites either check ``get_registry() is
None`` or go through the module helpers below, which hand out shared
no-op instruments while observability is off.

Campaign fan-out: each worker process installs a ``worker=True``
registry, drains it after every chunk, and ships the snapshot back on
the existing result pipe; the supervisor's side merges the drains into
the campaign-level registry, so ``coverage --jobs 8 --metrics out.prom``
reports one coherent registry whose totals match a serial run exactly.

Thread scoping: the campaign service (:mod:`repro.service`) runs
several jobs concurrently in one process, each wanting its own
registry.  :func:`scoped` installs a registry for the *calling thread*
only — every instrument helper consults the thread scope first and
falls back to the process-wide installation, so scoped jobs are
isolated from each other and from the global registry without the hot
paths paying more than one extra attribute read.

See ``docs/observability.md`` for the metric catalogue and span names.
"""

from __future__ import annotations

import contextlib
import threading

from repro.obs.metrics import (BUCKET_SHIFT, BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry, NULL_COUNTER,
                               NULL_GAUGE, NULL_HISTOGRAM, Timer,
                               bucket_index, bucket_upper_bound)
from repro.obs.spans import NULL_SPAN, SpanRecord, SpanRecorder
from repro.obs.timeseries import RollingWindow, TimeSeriesHub
from repro.obs.traceevent import TraceContext, trace_sidecar_path

__all__ = [
    "BUCKETS", "BUCKET_SHIFT", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM",
    "NULL_SPAN", "RollingWindow", "SpanRecord", "SpanRecorder",
    "TimeSeriesHub", "Timer", "TraceContext", "bucket_index",
    "bucket_upper_bound", "counter", "drain_worker_snapshot", "enabled",
    "gauge", "get_recorder", "get_registry", "histogram", "install",
    "merge_snapshot", "scoped", "session", "snapshot", "span",
    "trace_sidecar_path", "uninstall",
]

#: The installed registry / recorder, or None (observability off).
_registry: MetricsRegistry | None = None
_recorder: SpanRecorder | None = None

#: Per-thread registry/recorder overrides (see :func:`scoped`).
_scope = threading.local()


def install(registry: MetricsRegistry,
            recorder: SpanRecorder | None = None) -> None:
    """Turn observability on (replacing any previous installation).

    Also clears the calling thread's :func:`scoped` override: a
    campaign worker forked from a scoped service thread inherits the
    parent's thread-local scope, and its ``worker=True`` registry must
    win or its telemetry would accrue in a dead copy of the job
    registry instead of riding the result pipe home.
    """
    global _registry, _recorder
    _registry = registry
    _recorder = recorder
    _scope.registry = None
    _scope.recorder = None
    _scope.active = False


def uninstall() -> None:
    """Turn observability off; instruments become no-ops again."""
    global _registry, _recorder
    if _recorder is not None:
        _recorder.close()
    _registry = None
    _recorder = None


@contextlib.contextmanager
def scoped(registry: MetricsRegistry | None,
           recorder: SpanRecorder | None = None):
    """Registry/recorder override for the calling thread only.

    The service orchestrator wraps each job's execution in
    ``with obs.scoped(job_registry):`` so concurrently-running jobs
    record into isolated registries while the process-wide installation
    (if any) keeps serving every other thread.  Passing ``None``
    explicitly shadows the global registry — observability off for the
    region.  Scopes nest; the previous scope is restored on exit.
    """
    previous = (getattr(_scope, "registry", None),
                getattr(_scope, "recorder", None),
                getattr(_scope, "active", False))
    _scope.registry = registry
    _scope.recorder = recorder
    _scope.active = True
    try:
        yield registry
    finally:
        _scope.registry, _scope.recorder, _scope.active = previous


def get_registry() -> MetricsRegistry | None:
    if getattr(_scope, "active", False):
        return _scope.registry
    return _registry


def get_recorder() -> SpanRecorder | None:
    if getattr(_scope, "active", False):
        return _scope.recorder
    return _recorder


def enabled() -> bool:
    return get_registry() is not None


# -- instrument helpers (no-ops while off) ----------------------------------


def counter(name: str, help: str = "", **labels):
    registry = get_registry()
    if registry is None:
        return NULL_COUNTER
    return registry.counter(name, help=help, **labels)


def gauge(name: str, help: str = "", **labels):
    registry = get_registry()
    if registry is None:
        return NULL_GAUGE
    return registry.gauge(name, help=help, **labels)


def histogram(name: str, help: str = "", **labels):
    registry = get_registry()
    if registry is None:
        return NULL_HISTOGRAM
    return registry.histogram(name, help=help, **labels)


def span(name: str, **attrs):
    """A timed region: ``with obs.span("dbt.translate", guest=pc): ...``.

    Returns a shared no-op context manager while no recorder is
    installed, so call sites never need their own guard.
    """
    recorder = get_recorder()
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


# -- snapshots across the process boundary ----------------------------------


def snapshot() -> dict:
    """Snapshot the effective registry plus span aggregates."""
    registry, recorder = get_registry(), get_recorder()
    if registry is None:
        return {}
    snap = registry.snapshot()
    snap["spans"] = (recorder.snapshot_aggregates()
                     if recorder is not None else [])
    return snap


def drain_worker_snapshot() -> dict | None:
    """Snapshot-and-reset a *worker* registry; None in the parent.

    Campaign workers call this after each chunk so their telemetry
    rides the result pipe exactly once.  The parent's own registry is
    never drained — its metrics are already in the right place.
    """
    registry, recorder = get_registry(), get_recorder()
    if registry is None or not registry.worker:
        return None
    snap = registry.drain()
    snap["spans"] = (recorder.drain_aggregates()
                     if recorder is not None else [])
    return snap


def merge_snapshot(snap: dict | None) -> None:
    """Fold a worker drain into the effective registry (no-op if off)."""
    registry, recorder = get_registry(), get_recorder()
    if snap is None or registry is None:
        return
    registry.merge_snapshot(snap)
    if recorder is not None:
        recorder.merge_aggregates(snap.get("spans", ()))


@contextlib.contextmanager
def session(metrics_path: str | None = None,
            trace_path: str | None = None,
            span_capacity: int = 4096):
    """Observability for one command: install, run, export, uninstall.

    ``metrics_path`` picks the export format by suffix (``.prom``
    Prometheus text, ``.jsonl`` JSONL events, else the JSON snapshot
    ``repro stats`` reads); ``trace_path`` streams finished spans to a
    JSONL event log as they happen.  With neither path set this is a
    no-op — observability stays off.
    """
    if metrics_path is None and trace_path is None:
        yield None
        return
    registry = MetricsRegistry()
    recorder = SpanRecorder(capacity=span_capacity,
                            sink_path=trace_path)
    install(registry, recorder)
    try:
        yield registry
    finally:
        snap = snapshot()
        uninstall()
        if metrics_path is not None:
            from repro.obs.exporters import write_metrics
            write_metrics(metrics_path, snap)
