"""Zero-dependency metrics instruments and their registry.

The observability contract of the reproduction is: **the hot paths pay
nothing when observability is off**.  Instrumentation sites therefore
never talk to an instrument unconditionally — they either check
``repro.obs.get_registry() is None`` first (one module-attribute read)
or hold one of the ``NULL_*`` no-op instruments exported here.  Real
instruments only exist inside an installed :class:`MetricsRegistry`.

Instruments
-----------
``Counter``    monotonically increasing count (events, instructions)
``Gauge``      point-in-time value (cache bytes used)
``Histogram``  distribution over fixed log-scale (power-of-two)
               buckets, with percentile estimation by log-linear
               interpolation inside the winning bucket
``Timer``      context manager observing a wall-clock duration into a
               histogram (``with histogram.time(): ...``)

Labels are fixed at instrument creation (``registry.counter("x",
outcome="sdc")``); an instrument is identified by its name plus its
sorted label set, Prometheus-style.

Registries snapshot to plain JSON-able dicts and merge snapshots back,
which is how per-worker campaign metrics travel over the existing
result pipe and fold into the supervisor's campaign-level registry.
"""

from __future__ import annotations

import math
import time

#: Number of histogram buckets.
BUCKETS = 64
#: Bucket ``i`` holds observations ``<= 2**(i - BUCKET_SHIFT)``; with a
#: shift of 20 the buckets span ~1 microsecond .. ~8.8e12, covering
#: both second-scale timings and instruction counts.
BUCKET_SHIFT = 20


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of histogram bucket ``index``."""
    return 2.0 ** (index - BUCKET_SHIFT)


def bucket_index(value: float) -> int:
    """Index of the log-scale bucket holding ``value``."""
    if value <= 0:
        return 0
    mantissa, exponent = math.frexp(value)   # value = mantissa * 2**exp
    index = exponent + BUCKET_SHIFT - (1 if mantissa == 0.5 else 0)
    if index < 0:
        return 0
    return min(index, BUCKETS - 1)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time value."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0


class Timer:
    """Context manager observing its wall-clock span into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Histogram:
    """Distribution over fixed power-of-two buckets."""

    __slots__ = ("name", "help", "labels", "bucket_counts", "count",
                 "sum")
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.bucket_counts = [0] * BUCKETS
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bucket_index(value)] += 1
        self.count += 1
        self.sum += value

    def time(self) -> Timer:
        return Timer(self)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``).

        Log-linear (geometric) interpolation inside the winning
        bucket: the buckets are power-of-two wide, so observations
        within one are far better modelled as uniform in *log* space
        than in linear space — linear interpolation systematically
        overstates quantiles in the coarse high buckets ``repro
        stats`` shows.  Exact at bucket boundaries; bucket 0 (values
        ``<= 2**-BUCKET_SHIFT``) has no finite log-lower bound and
        keeps linear interpolation from 0.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                upper = bucket_upper_bound(index)
                fraction = (target - previous) / bucket_count
                if index == 0:
                    return upper * fraction
                lower = bucket_upper_bound(index - 1)
                # upper == 2 * lower, so this is lower * 2**fraction.
                return lower * (upper / lower) ** fraction
        return bucket_upper_bound(BUCKETS - 1)  # pragma: no cover

    def merge_state(self, count: int, total: float,
                    buckets) -> None:
        """Fold another histogram's state (snapshot form) into this."""
        self.count += count
        self.sum += total
        for index, bucket_count in buckets:
            self.bucket_counts[index] += bucket_count

    def reset(self) -> None:
        self.bucket_counts = [0] * BUCKETS
        self.count = 0
        self.sum = 0.0


class _NullCounter:
    """No-op stand-in handed out when no registry is installed."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: int | float) -> None:
        pass

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    _TIMER = _NullTimer()

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return self._TIMER


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Holds every live instrument, keyed by (name, labels).

    ``worker=True`` marks a registry installed inside a campaign worker
    process; such registries are drained (snapshot + reset) after each
    chunk so their contents ride the result pipe back to the parent
    exactly once.
    """

    def __init__(self, worker: bool = False):
        self.worker = worker
        self._instruments: dict[tuple, object] = {}

    # -- instrument access ---------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, help=help, labels=key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  **labels) -> Histogram:
        return self._get(Histogram, name, help, labels)

    def instruments(self) -> list:
        """Every live instrument, in deterministic (name, labels) order."""
        return [self._instruments[key]
                for key in sorted(self._instruments)]

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able view of every instrument's current state."""
        counters, gauges, histograms = [], [], []
        for instrument in self.instruments():
            entry = {"name": instrument.name,
                     "labels": dict(instrument.labels)}
            if instrument.kind == "counter":
                entry["value"] = instrument.value
                counters.append(entry)
            elif instrument.kind == "gauge":
                entry["value"] = instrument.value
                gauges.append(entry)
            else:
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
                entry["buckets"] = [
                    [index, count] for index, count
                    in enumerate(instrument.bucket_counts) if count]
                histograms.append(entry)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot (typically a worker's drain) into this
        registry: counters and histograms add, gauges keep the max —
        per-worker gauges (e.g. cache bytes) do not sum meaningfully
        across address spaces."""
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"],
                         **entry.get("labels", {})).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            gauge = self.gauge(entry["name"], **entry.get("labels", {}))
            gauge.set(max(gauge.value, entry["value"]))
        for entry in snapshot.get("histograms", ()):
            self.histogram(
                entry["name"], **entry.get("labels", {})).merge_state(
                entry["count"], entry["sum"], entry["buckets"])

    def drain(self) -> dict:
        """Snapshot then reset every instrument (identity preserved)."""
        snapshot = self.snapshot()
        for instrument in self._instruments.values():
            instrument.reset()
        return snapshot

    def clear(self) -> None:
        self._instruments.clear()
