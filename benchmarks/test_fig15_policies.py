"""Figure 15 — RCF slowdown under the four signature checking
policies (ALLBB / RET-BE / RET / END).

Paper reference: int overhead drops 77% -> 37% from ALLBB to RET-BE,
fp 23% -> 18%, all 46% -> 26%; END reaches 16% and RET ≈ END because
"programs spent most of the executing time in inner loops rather than
calling and returning from functions".
"""

from repro.analysis import figure15


def test_figure15_checking_policies(benchmark, scale, publish):
    sweep = benchmark.pedantic(figure15, args=(scale,), rounds=1,
                               iterations=1)
    labels = ["rcf", "rcf-ret-be", "rcf-ret", "rcf-end"]
    text = ("Figure 15 — RCF slowdown vs native under checking "
            "policies\n" + sweep.table(labels))
    means = {label: sweep.geomeans(label, versus="dbt-base")
             for label in labels}
    text += "\n\ngeomean overhead vs DBT baseline:\n"
    for label, mean in means.items():
        text += (f"  {label:11s} fp={mean['fp'] - 1:+.1%} "
                 f"int={mean['int'] - 1:+.1%} "
                 f"all={mean['all'] - 1:+.1%}\n")
    publish("fig15_policies", text)

    # Monotone: fewer checks, less overhead.
    assert means["rcf"]["all"] > means["rcf-ret-be"]["all"]
    assert means["rcf-ret-be"]["all"] >= means["rcf-ret"]["all"]
    assert means["rcf-ret"]["all"] >= means["rcf-end"]["all"] * 0.999
    # RET and END nearly identical (inner loops dominate, not calls).
    assert abs(means["rcf-ret"]["all"]
               - means["rcf-end"]["all"]) < 0.08
    # The improvement is larger on the int suite than the fp suite.
    int_drop = means["rcf"]["int"] - means["rcf-ret-be"]["int"]
    fp_drop = means["rcf"]["fp"] - means["rcf-ret-be"]["fp"]
    assert int_drop > fp_drop
