"""Figure 3 — branch-error probabilities over the SDC-capable
categories A..E (renormalized).

Paper reference: SPEC-Int A 20.70%, B 0.41%, C 2.22%, D 4.04%,
E 72.62%; SPEC-Fp A 17.33%, B 0.03%, C 16.98%, D 1.52%, E 64.14%.
Shape assertions below: E dominates, A second, B negligible, and the
fp suite's big blocks make C ≫ D while the int suite has D > C.
"""

from repro.analysis import compute_figure2
from repro.faults import Category


def test_figure3_sdc_categories(benchmark, scale, publish):
    figure = benchmark.pedantic(compute_figure2, args=(scale,),
                                rounds=1, iterations=1)
    publish("fig03_sdc_categories", figure.render_figure3())

    int_dist = figure.int_model.sdc_distribution()
    fp_dist = figure.fp_model.sdc_distribution()

    for dist in (int_dist, fp_dist):
        # E is the largest of B/C/D/E (the paper: "most of the errors
        # are in category E")
        assert dist[Category.E] == max(
            dist[c] for c in (Category.B, Category.C, Category.D,
                              Category.E))
        assert dist[Category.B] < 0.05

    # "the probability of error in category C is higher than category D
    # in the SPEC-Fp benchmark" — and vice versa for SPEC-Int
    assert fp_dist[Category.C] > fp_dist[Category.D]
    assert int_dist[Category.D] > int_dist[Category.C]
