"""Extension — data-flow checking by duplication (paper Section 7:
"In the future we will add data flow checking into our implementation
and measure the overall performance impact").

Measures (a) the overall performance impact of SWIFT-style duplication
alone and combined with the control-flow techniques, and (b) the
detection-rate payoff on random register-bit faults that control-flow
signatures alone cannot see.

Deviation, documented in DESIGN.md: the shadow values live in memory
(R32's spare registers host the control-flow state), so absolute
duplication overhead is well above SWIFT's register-resident numbers;
the detection behaviour is the reproduced object.
"""

from repro.analysis.report import format_table
from repro.checking import make_technique
from repro.dbt import Dbt
from repro.faults import PipelineConfig, run_data_fault_campaign
from repro.machine import run_native
from repro.workloads import load

PERF_NAMES = ("171.swim", "181.mcf", "254.gap")
CAMPAIGN_NAME = "254.gap"


def _measure():
    perf = {}
    for name in PERF_NAMES:
        program = load(name, "test")
        cpu, _ = run_native(program, max_steps=3_000_000)

        def slowdown(**kwargs):
            dbt = Dbt(program, **kwargs)
            result = dbt.run(max_steps=50_000_000)
            assert result.ok
            return dbt.cpu.cycles / cpu.cycles

        perf[name] = {
            "edgcf": slowdown(technique=make_technique("edgcf")),
            "df": slowdown(dataflow=True),
            "edgcf+df": slowdown(technique=make_technique("edgcf"),
                                 dataflow=True),
        }

    program = load(CAMPAIGN_NAME, "test")
    campaigns = {}
    for label, config in (
            ("none", PipelineConfig("dbt", None)),
            ("edgcf", PipelineConfig("dbt", "edgcf")),
            ("df", PipelineConfig("dbt", None, dataflow=True)),
            ("edgcf+df", PipelineConfig("dbt", "edgcf",
                                        dataflow=True))):
        campaigns[label] = run_data_fault_campaign(program, config,
                                                   count=40, seed=2006)
    return perf, campaigns


def test_dataflow_extension(benchmark, publish):
    perf, campaigns = benchmark.pedantic(_measure, rounds=1,
                                         iterations=1)

    perf_rows = [[name, v["edgcf"], v["df"], v["edgcf+df"]]
                 for name, v in perf.items()]
    text = ("Extension: data-flow duplication — slowdown vs native\n"
            + format_table(["benchmark", "edgcf", "duplication",
                            "edgcf+duplication"], perf_rows))
    text += ("\n\nrandom register-bit faults on "
             f"{CAMPAIGN_NAME} (40 strikes):\n")
    camp_rows = [[label, result.detected, result.sdc,
                  result.total() - result.detected - result.sdc]
                 for label, result in campaigns.items()]
    text += format_table(["config", "detected", "SDC",
                          "benign/other"], camp_rows)
    publish("dataflow_extension", text)

    # Performance: duplication dominates the combined cost; combining
    # with EdgCF adds modestly on top.
    for name, values in perf.items():
        assert values["edgcf+df"] > values["df"] > values["edgcf"]

    # Detection: data faults are invisible to control-flow checking
    # alone but killed by duplication.
    assert campaigns["none"].sdc > 0
    assert campaigns["edgcf"].sdc > 0           # CF checking can't see them
    assert campaigns["df"].sdc == 0
    assert campaigns["edgcf+df"].sdc == 0
    assert campaigns["df"].detected >= campaigns["none"].sdc * 0.8
