"""Performance trajectory baseline.

Times the throughput-critical paths — the raw interpreter loop, the
block-compiling execution tier, and a fixed-seed fault-injection
mini-campaign on each backend — and writes the numbers to
``benchmarks/results/BENCH_campaign.json`` so future PRs have a
machine-readable perf history to compare against.

All measured work is deterministic (fixed seeds, fixed workloads); only
the wall clock varies between machines.  The campaign half honours
``REPRO_BENCH_JOBS``, so the same file also records the parallel-engine
speedup on multi-core runners.

The MIPS rows use long-running instances (hundreds of thousands to
millions of retired instructions) rather than the ``test``/``small``
suite scales: the block backend compiles each trace once, so a run
must be long enough for execution — not one-time compilation — to
dominate, which is also the regime fault campaigns operate in.
"""

from __future__ import annotations

import json
import time

from repro.exec import BACKEND_NAMES
from repro.faults import (CampaignExecutor, PipelineConfig, clear_caches,
                          generate_category_faults)
from repro.isa.assembler import assemble
from repro.machine import run_native
from repro.workloads import BY_NAME, load

#: Fixed-seed mini-campaign: (workload, per-category spec count, seed).
CAMPAIGN_WORKLOAD = "254.gap"
CAMPAIGN_PER_CATEGORY = 34     # 6 categories -> ~200 single-fault runs
CAMPAIGN_SEED = 2006

#: Execution-bound campaign: error classification without a detection
#: technique, so every fault run executes to completion (or the hang
#: budget) instead of stopping at the first failed check.  This is the
#: regime where campaign time is guest execution, i.e. where the
#: backend choice matters; the short detected runs of the dbt/rcf
#: campaign above are dominated by per-run translation/setup instead.
CAMPAIGN_EXEC_PARAMS = {"iterations": 2000}
CAMPAIGN_EXEC_PER_CATEGORY = 6

#: Long-running instances for the MIPS rows.  Parameters are chosen so
#: each run retires enough instructions that per-run compile time is
#: noise for the block backend (~0.4M and ~3.3M instructions).
MIPS_WORKLOADS = {
    "254.gap": {"iterations": 8000},
    "183.equake": {"rows": 64, "nnz_per_row": 6, "repeats": 400},
}

#: Multithreaded MIPS row: a long-running 4-thread instance (~1.7M
#: retired instructions, ~3.4k context switches at the default
#: quantum) run under repro.threads.ThreadedMachine on both backends.
#: The schedule-trace digests must match across backends — the perf
#: harness re-proves the cross-backend determinism claim on every run.
MT_WORKLOAD = "mt.counters4"
MT_PARAMS = {"threads": 4, "iters": 4000, "spin": 32}


def _mips_programs() -> dict:
    return {name: assemble(BY_NAME[name].generator(**params),
                           name=f"{name}@bench")
            for name, params in MIPS_WORKLOADS.items()}


def _backend_mips() -> dict:
    """Best-of-3 native throughput per (workload, backend)."""
    programs = _mips_programs()
    per_workload: dict = {}
    for name, program in programs.items():
        rows = {}
        for backend in BACKEND_NAMES:
            run_native(program, backend=backend)   # warmup
            best = float("inf")
            icount = 0
            for _ in range(3):
                start = time.perf_counter()
                cpu, stop = run_native(program, backend=backend)
                best = min(best, time.perf_counter() - start)
                icount = cpu.icount
            assert stop.exit_code == 0
            rows[backend] = {
                "icount": icount,
                "seconds": round(best, 6),
                "mips": round(icount / best / 1e6, 4),
            }
        rows["speedup"] = round(
            rows["block"]["mips"] / rows["interp"]["mips"], 3)
        per_workload[name] = rows
    return per_workload


def _campaign_throughput(jobs: int, backend: str) -> dict:
    program = load(CAMPAIGN_WORKLOAD, "test")
    faults = generate_category_faults(
        program, per_category=CAMPAIGN_PER_CATEGORY, seed=CAMPAIGN_SEED)
    runs = faults.total()
    executor = CampaignExecutor(
        program, PipelineConfig("dbt", "rcf", backend=backend), jobs=jobs)
    start = time.perf_counter()
    result = executor.run_campaign(faults)
    seconds = time.perf_counter() - start
    tallies = {category.value: {out.value: n for out, n in bucket.items()}
               for category, bucket in result.outcomes.items()}
    return {
        "workload": CAMPAIGN_WORKLOAD,
        "seed": CAMPAIGN_SEED,
        "backend": backend,
        "runs": runs,
        "jobs": jobs,
        "seconds": round(seconds, 4),
        "runs_per_sec": round(runs / seconds, 3),
        "tallies": tallies,
    }


def _exec_campaign_throughput(jobs: int, backend: str) -> dict:
    program = assemble(
        BY_NAME[CAMPAIGN_WORKLOAD].generator(**CAMPAIGN_EXEC_PARAMS),
        name=f"{CAMPAIGN_WORKLOAD}@exec-bench")
    faults = generate_category_faults(
        program, per_category=CAMPAIGN_EXEC_PER_CATEGORY,
        seed=CAMPAIGN_SEED)
    runs = faults.total()
    executor = CampaignExecutor(
        program, PipelineConfig("dbt", None, backend=backend), jobs=jobs)
    start = time.perf_counter()
    result = executor.run_campaign(faults)
    seconds = time.perf_counter() - start
    tallies = {category.value: {out.value: n for out, n in bucket.items()}
               for category, bucket in result.outcomes.items()}
    return {
        "workload": CAMPAIGN_WORKLOAD,
        "params": CAMPAIGN_EXEC_PARAMS,
        "seed": CAMPAIGN_SEED,
        "backend": backend,
        "runs": runs,
        "jobs": jobs,
        "seconds": round(seconds, 4),
        "runs_per_sec": round(runs / seconds, 3),
        "tallies": tallies,
    }


def _recovery_overhead() -> dict:
    """Checkpoint capture cost on clean runs at the default interval.

    The acceptance bar for ``--recover`` (docs/recovery.md): a run
    that never triggers a rollback must pay <= 15% over a plain run
    on either backend — segmented execution plus per-interval
    copy-on-write checkpoint capture is the entire price.
    """
    from repro.exec import install_backend
    from repro.machine import Cpu
    from repro.machine.faults import StopReason
    from repro.recovery import (DEFAULT_CHECKPOINT_INTERVAL,
                                RecoveryManager)

    def timed_run(program, backend, managed):
        """Execution-only wall clock on a freshly built CPU; plain and
        managed runs share construction/load so the delta is exactly
        the recovery machinery (COW store tracking + segmentation +
        capture)."""
        cpu = Cpu()
        install_backend(cpu, backend)
        cpu.load_program(program, executable_text=True)
        if managed:
            manager = RecoveryManager(
                cpu, step=lambda n: cpu.run(max_steps=n),
                classify=lambda stop: (
                    "done" if stop.reason is StopReason.HALTED
                    else "limit"),
                budget=50_000_000, interval=DEFAULT_CHECKPOINT_INTERVAL)
            start = time.perf_counter()
            stop = manager.execute()
            seconds = time.perf_counter() - start
            assert not manager.report.gave_up
            checkpoints = manager.report.checkpoints
        else:
            start = time.perf_counter()
            stop = cpu.run(max_steps=50_000_000)
            seconds = time.perf_counter() - start
            checkpoints = 0
        assert stop.reason is StopReason.HALTED
        return seconds, checkpoints

    per_workload: dict = {}
    for name, program in _mips_programs().items():
        rows = {}
        for backend in BACKEND_NAMES:
            run_native(program, backend=backend)   # warmup
            # Host load varies on the scale of seconds, so (a) a
            # managed/plain ratio is only meaningful within a
            # back-to-back pair, (b) sub-100ms samples are noise —
            # batch enough executions per sample to pass ~0.25s, and
            # (c) best-of-3 pairs (the file's convention) discards
            # pairs a load burst happened to inflate.
            calib, _unused = timed_run(program, backend, False)
            reps = max(1, round(0.25 / max(calib, 1e-9)))

            def sample(managed):
                total = 0.0
                cp = 0
                for _ in range(reps):
                    seconds, cp = timed_run(program, backend, managed)
                    total += seconds
                return total, cp

            ratios = []
            plain = managed = float("inf")
            checkpoints = 0
            for _ in range(3):
                plain_s, _unused = sample(False)
                managed_s, checkpoints = sample(True)
                ratios.append(managed_s / plain_s)
                plain = min(plain, plain_s / reps)
                managed = min(managed, managed_s / reps)
            rows[backend] = {
                "plain_seconds": round(plain, 6),
                "managed_seconds": round(managed, 6),
                "checkpoints": checkpoints,
                "overhead": round(min(ratios) - 1.0, 4),
            }
        per_workload[name] = rows
    return per_workload


def _run_threaded(program, backend, quantum):
    from repro.exec import install_backend
    from repro.machine import Cpu
    from repro.threads import ThreadedMachine

    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(program, executable_text=True)
    machine = ThreadedMachine(cpu, quantum=quantum)
    stop = machine.run(max_steps=50_000_000)
    return cpu, stop, machine


def _mt_mips() -> dict:
    """Best-of-3 multithreaded throughput per backend, plus the
    cross-backend schedule-parity check (ISSUE acceptance: a 4-thread
    benchmark runs digest-identical, including the schedule trace,
    across interp and block)."""
    from repro.machine.faults import StopReason
    from repro.threads import DEFAULT_QUANTUM

    program = assemble(BY_NAME[MT_WORKLOAD].generator(**MT_PARAMS),
                       name=f"{MT_WORKLOAD}@bench")
    rows: dict = {"workload": MT_WORKLOAD, "params": MT_PARAMS,
                  "quantum": DEFAULT_QUANTUM}
    for backend in BACKEND_NAMES:
        _run_threaded(program, backend, DEFAULT_QUANTUM)   # warmup
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            cpu, stop, machine = _run_threaded(program, backend,
                                               DEFAULT_QUANTUM)
            best = min(best, time.perf_counter() - start)
        assert stop.reason is StopReason.HALTED and stop.exit_code == 0
        rows[backend] = {
            "icount": cpu.icount,
            "seconds": round(best, 6),
            "mips": round(cpu.icount / best / 1e6, 4),
            "switches": machine.switches,
            "schedule": machine.trace_digest(),
        }
    rows["speedup"] = round(
        rows["block"]["mips"] / rows["interp"]["mips"], 3)
    return rows


def _mt_scheduler_overhead() -> dict:
    """ThreadedMachine wrapping cost on *single-threaded* programs.

    The ISSUE acceptance bound: a single-thread program run under the
    scheduler (quantum accounting, solo fast path, never an actual
    switch) must pay <= 10% over a bare ``cpu.run`` on either backend.
    Same back-to-back-pair discipline as the recovery rows.
    """
    from repro.exec import install_backend
    from repro.machine import Cpu
    from repro.machine.faults import StopReason
    from repro.threads import DEFAULT_QUANTUM, ThreadedMachine

    def timed_run(program, backend, managed):
        cpu = Cpu()
        install_backend(cpu, backend)
        cpu.load_program(program, executable_text=True)
        if managed:
            machine = ThreadedMachine(cpu, quantum=DEFAULT_QUANTUM)
            start = time.perf_counter()
            stop = machine.run(max_steps=50_000_000)
        else:
            start = time.perf_counter()
            stop = cpu.run(max_steps=50_000_000)
        seconds = time.perf_counter() - start
        assert stop.reason is StopReason.HALTED and stop.exit_code == 0
        return seconds

    per_workload: dict = {}
    for name, program in _mips_programs().items():
        rows = {}
        for backend in BACKEND_NAMES:
            run_native(program, backend=backend)   # warmup
            calib = timed_run(program, backend, False)
            reps = max(1, round(0.25 / max(calib, 1e-9)))

            def sample(managed):
                return sum(timed_run(program, backend, managed)
                           for _ in range(reps))

            ratios = []
            plain = managed = float("inf")
            for _ in range(3):
                plain_s = sample(False)
                managed_s = sample(True)
                ratios.append(managed_s / plain_s)
                plain = min(plain, plain_s / reps)
                managed = min(managed, managed_s / reps)
            rows[backend] = {
                "plain_seconds": round(plain, 6),
                "managed_seconds": round(managed, 6),
                "overhead": round(min(ratios) - 1.0, 4),
            }
        per_workload[name] = rows
    return per_workload


def _profiler_overhead() -> dict:
    """Hot-block profiler cost vs a bare run, per backend.

    Same back-to-back-pair discipline as the recovery rows.  The
    profiler's totals must also be *exact* (equal to the bare run's
    icount/cycles) — a free cross-check of the attribution contract
    while the timing harness is already running everything twice.
    """
    from repro.exec.profiler import profile_native

    per_workload: dict = {}
    for name, program in _mips_programs().items():
        rows = {}
        for backend in BACKEND_NAMES:
            run_native(program, backend=backend)   # warmup
            start = time.perf_counter()
            run_native(program, backend=backend)
            calib = time.perf_counter() - start
            reps = max(1, round(0.25 / max(calib, 1e-9)))

            def sample(profiled):
                total = 0.0
                for _ in range(reps):
                    start = time.perf_counter()
                    if profiled:
                        cpu, stop, _prof = profile_native(
                            program, backend=backend)
                    else:
                        cpu, stop = run_native(program,
                                               backend=backend)
                    total += time.perf_counter() - start
                return total, cpu

            ratios = []
            plain = profiled = float("inf")
            for _ in range(3):
                plain_s, bare_cpu = sample(False)
                prof_s, _unused = sample(True)
                ratios.append(prof_s / plain_s)
                plain = min(plain, plain_s / reps)
                profiled = min(profiled, prof_s / reps)
            _cpu, _stop, prof = profile_native(program,
                                               backend=backend)
            assert (prof.total_icount, prof.total_cycles) == \
                (bare_cpu.icount, bare_cpu.cycles)
            rows[backend] = {
                "plain_seconds": round(plain, 6),
                "profiled_seconds": round(profiled, 6),
                "overhead": round(min(ratios) - 1.0, 4),
            }
        per_workload[name] = rows
    return per_workload


def test_perf_baseline(scale, jobs, results_dir, publish):
    interp_mips = _backend_mips()
    mt_mips = _mt_mips()
    mt_overhead = _mt_scheduler_overhead()
    recovery = _recovery_overhead()
    profiler = _profiler_overhead()
    campaigns = {}
    exec_campaigns = {}
    for backend in BACKEND_NAMES:
        clear_caches()
        campaigns[backend] = _campaign_throughput(jobs, backend)
        clear_caches()
        exec_campaigns[backend] = _exec_campaign_throughput(jobs, backend)

    campaign_speedup = round(
        campaigns["block"]["runs_per_sec"]
        / campaigns["interp"]["runs_per_sec"], 3)
    exec_speedup = round(
        exec_campaigns["block"]["runs_per_sec"]
        / exec_campaigns["interp"]["runs_per_sec"], 3)
    payload = {
        "scale": scale,
        "interpreter": interp_mips,
        "campaign": campaigns["interp"],
        "campaign_block": campaigns["block"],
        "campaign_block_speedup": campaign_speedup,
        "campaign_exec": exec_campaigns["interp"],
        "campaign_exec_block": exec_campaigns["block"],
        "campaign_exec_block_speedup": exec_speedup,
        "recovery_overhead": recovery,
        "profiler_overhead": profiler,
        "mt": mt_mips,
        "mt_scheduler_overhead": mt_overhead,
    }
    (results_dir / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    lines = [f"Perf baseline (scale={scale}, jobs={jobs})"]
    for name, row in interp_mips.items():
        for backend in BACKEND_NAMES:
            sub = row[backend]
            lines.append(
                f"  {backend:6s} {name:12s} {sub['mips']:8.3f} MIPS "
                f"({sub['icount']} instrs in {sub['seconds']:.3f}s)")
        lines.append(f"  block/interp speedup {name:12s} "
                     f"{row['speedup']:.2f}x")
    for backend in BACKEND_NAMES:
        row = campaigns[backend]
        lines.append(f"  campaign[{backend:6s}] {row['runs']} runs in "
                     f"{row['seconds']:.2f}s = "
                     f"{row['runs_per_sec']:.1f} runs/s")
    lines.append(f"  campaign block/interp speedup {campaign_speedup:.2f}x")
    for backend in BACKEND_NAMES:
        row = exec_campaigns[backend]
        lines.append(f"  campaign-exec[{backend:6s}] {row['runs']} runs "
                     f"in {row['seconds']:.2f}s = "
                     f"{row['runs_per_sec']:.1f} runs/s")
    lines.append("  campaign-exec block/interp speedup "
                 f"{exec_speedup:.2f}x")
    for name, row in recovery.items():
        for backend in BACKEND_NAMES:
            sub = row[backend]
            lines.append(
                f"  recovery[{backend:6s}] {name:12s} "
                f"{sub['overhead'] * 100:+6.2f}% "
                f"({sub['checkpoints']} checkpoint(s), "
                f"{sub['plain_seconds']:.3f}s -> "
                f"{sub['managed_seconds']:.3f}s)")
    for name, row in profiler.items():
        for backend in BACKEND_NAMES:
            sub = row[backend]
            lines.append(
                f"  profiler[{backend:6s}] {name:12s} "
                f"{sub['overhead'] * 100:+6.2f}% "
                f"({sub['plain_seconds']:.3f}s -> "
                f"{sub['profiled_seconds']:.3f}s)")
    for backend in BACKEND_NAMES:
        sub = mt_mips[backend]
        lines.append(
            f"  mt[{backend:6s}] {MT_WORKLOAD:12s} "
            f"{sub['mips']:8.3f} MIPS ({sub['icount']} instrs, "
            f"{sub['switches']} switches, schedule {sub['schedule']})")
    lines.append(f"  mt block/interp speedup {MT_WORKLOAD:12s} "
                 f"{mt_mips['speedup']:.2f}x")
    for name, row in mt_overhead.items():
        for backend in BACKEND_NAMES:
            sub = row[backend]
            lines.append(
                f"  mt-sched[{backend:6s}] {name:12s} "
                f"{sub['overhead'] * 100:+6.2f}% "
                f"({sub['plain_seconds']:.3f}s -> "
                f"{sub['managed_seconds']:.3f}s)")
    publish("perf_baseline", "\n".join(lines))

    # Campaign outcome tallies must not depend on the execution tier.
    assert campaigns["interp"]["tallies"] == campaigns["block"]["tallies"]
    assert (exec_campaigns["interp"]["tallies"]
            == exec_campaigns["block"]["tallies"])
    assert campaigns["interp"]["runs"] >= 150
    for row in campaigns.values():
        assert row["runs_per_sec"] > 0
    # Target is >=3x (recorded above); conservative floor against CI
    # runner noise.
    assert exec_speedup > 2.0, exec_speedup
    for name, row in interp_mips.items():
        for backend in BACKEND_NAMES:
            assert row[backend]["mips"] > 0
        # Target is >=5x (recorded above); assert a conservative floor
        # so a loaded CI runner doesn't flake the suite.
        assert row["speedup"] > 2.5, (name, row["speedup"])
    # Clean-run recovery cost at the default interval (docs/recovery.md
    # acceptance bound).
    for name, row in recovery.items():
        for backend in BACKEND_NAMES:
            overhead = row[backend]["overhead"]
            assert overhead <= 0.15, (name, backend, overhead)
    # Profiler-on cost is branch-density-proportional; the block
    # backend pays more (terminators re-enter the interpreter's
    # handlers for exact attribution) but a profiled block run must
    # still beat a *bare* interpreter run — the configuration anyone
    # would actually profile under.
    for name, row in profiler.items():
        assert row["interp"]["overhead"] <= 0.5, \
            (name, row["interp"]["overhead"])
        assert row["block"]["profiled_seconds"] < \
            row["interp"]["plain_seconds"], name
    # Threaded machine: schedule trace (and retired-instruction count)
    # must be byte-identical across execution tiers, and throughput
    # must be real on both.
    assert (mt_mips["interp"]["schedule"] == mt_mips["block"]["schedule"]
            and mt_mips["interp"]["icount"] == mt_mips["block"]["icount"]
            and mt_mips["interp"]["switches"]
            == mt_mips["block"]["switches"]), mt_mips
    assert mt_mips["interp"]["switches"] > 100, mt_mips
    for backend in BACKEND_NAMES:
        assert mt_mips[backend]["mips"] > 0
    # Scheduler cost on single-thread programs (ISSUE acceptance
    # bound): quantum accounting under the solo fast path must stay
    # within 10% of a bare run on either backend.
    for name, row in mt_overhead.items():
        for backend in BACKEND_NAMES:
            overhead = row[backend]["overhead"]
            assert overhead <= 0.10, (name, backend, overhead)
