"""Performance trajectory baseline.

Times the two throughput-critical paths — the raw interpreter loop and
a fixed-seed fault-injection mini-campaign — and writes the numbers to
``benchmarks/results/BENCH_campaign.json`` so future PRs have a
machine-readable perf history to compare against.

All measured work is deterministic (fixed seeds, fixed workloads); only
the wall clock varies between machines.  The campaign half honours
``REPRO_BENCH_JOBS``, so the same file also records the parallel-engine
speedup on multi-core runners.
"""

from __future__ import annotations

import json
import time

from repro.faults import (CampaignExecutor, PipelineConfig, clear_caches,
                          generate_category_faults)
from repro.machine import run_native
from repro.workloads import load

#: Fixed-seed mini-campaign: (workload, per-category spec count, seed).
CAMPAIGN_WORKLOAD = "254.gap"
CAMPAIGN_PER_CATEGORY = 34     # 6 categories -> ~200 single-fault runs
CAMPAIGN_SEED = 2006

INTERP_WORKLOADS = ("254.gap", "183.equake")


def _interp_mips(scale: str) -> dict:
    """Best-of-3 native interpreter throughput per workload."""
    per_workload = {}
    for name in INTERP_WORKLOADS:
        program = load(name, scale)
        run_native(program)      # warm the decode cache path
        best = float("inf")
        icount = 0
        for _ in range(3):
            start = time.perf_counter()
            cpu, stop = run_native(program)
            best = min(best, time.perf_counter() - start)
            icount = cpu.icount
        assert stop.exit_code == 0
        per_workload[name] = {
            "icount": icount,
            "seconds": round(best, 6),
            "mips": round(icount / best / 1e6, 4),
        }
    return per_workload


def _campaign_throughput(jobs: int) -> dict:
    program = load(CAMPAIGN_WORKLOAD, "test")
    faults = generate_category_faults(
        program, per_category=CAMPAIGN_PER_CATEGORY, seed=CAMPAIGN_SEED)
    runs = faults.total()
    executor = CampaignExecutor(program, PipelineConfig("dbt", "rcf"),
                                jobs=jobs)
    start = time.perf_counter()
    result = executor.run_campaign(faults)
    seconds = time.perf_counter() - start
    tallies = {category.value: {out.value: n for out, n in bucket.items()}
               for category, bucket in result.outcomes.items()}
    return {
        "workload": CAMPAIGN_WORKLOAD,
        "seed": CAMPAIGN_SEED,
        "runs": runs,
        "jobs": jobs,
        "seconds": round(seconds, 4),
        "runs_per_sec": round(runs / seconds, 3),
        "tallies": tallies,
    }


def test_perf_baseline(scale, jobs, results_dir, publish):
    clear_caches()
    interp = _interp_mips(scale)
    campaign = _campaign_throughput(jobs)

    payload = {
        "scale": scale,
        "interpreter": interp,
        "campaign": campaign,
    }
    (results_dir / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    lines = [f"Perf baseline (scale={scale}, jobs={jobs})"]
    for name, row in interp.items():
        lines.append(f"  interp {name:12s} {row['mips']:.3f} MIPS "
                     f"({row['icount']} instrs in {row['seconds']:.3f}s)")
    lines.append(f"  campaign {campaign['runs']} runs in "
                 f"{campaign['seconds']:.2f}s = "
                 f"{campaign['runs_per_sec']:.1f} runs/s")
    publish("perf_baseline", "\n".join(lines))

    assert campaign["runs"] >= 150
    assert campaign["runs_per_sec"] > 0
    for row in interp.values():
        assert row["mips"] > 0
