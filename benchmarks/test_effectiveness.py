"""Extension — overall effectiveness via statistical soft-error
injection (paper Section 7: "soft-error injection to measure the
actual effectiveness of our techniques").

Faults are sampled from the same distribution the Figure-2 error model
integrates over (every dynamic branch execution x offset/flag bit
equally likely), so the measured outcome rates cross-validate the
analytic model: the hardware-detected rate tracks P(F), the benign
rate tracks P(no-error), and the techniques' job is to convert the
remaining SDC mass into signature detections.
"""

from repro.analysis.report import format_table
from repro.faults import (Category, Outcome, PipelineConfig,
                          compute_error_model,
                          run_effectiveness_campaign)
from repro.workloads import load

PROGRAMS = ("254.gap", "197.parser")
COUNT = 60


def _measure():
    data = {}
    for name in PROGRAMS:
        program = load(name, "test")
        model = compute_error_model(program)
        campaigns = {}
        for technique in (None, "ecf", "edgcf", "rcf"):
            config = PipelineConfig("dbt", technique)
            campaigns[technique or "none"] = run_effectiveness_campaign(
                program, config, count=COUNT, seed=2006)
        data[name] = (model, campaigns)
    return data


def test_overall_effectiveness(benchmark, publish):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for name, (model, campaigns) in data.items():
        for label, result in campaigns.items():
            rows.append([
                name, label,
                f"{result.rate(Outcome.BENIGN):.2f}",
                f"{result.rate(Outcome.DETECTED_HARDWARE):.2f}",
                f"{result.rate(Outcome.DETECTED_SIGNATURE):.2f}",
                f"{result.sdc_rate:.2f}",
                f"{result.rate(Outcome.HANG):.2f}",
            ])
        rows.append([name, "(model)",
                     f"{model.probability(Category.NO_ERROR):.2f}",
                     f"{model.probability(Category.F):.2f}", "-", "-",
                     "-"])
    text = ("Overall effectiveness — model-sampled soft errors "
            f"({COUNT} per config)\n"
            + format_table(["benchmark", "config", "benign", "hw-det",
                            "sig-det", "SDC", "hang"], rows))
    publish("effectiveness", text)

    for name, (model, campaigns) in data.items():
        none = campaigns["none"]
        # Unprotected runs suffer silent corruption.
        assert none.sdc_rate > 0.0, name
        # Every technique eliminates (or at least strictly reduces) the
        # unreported-harm mass; the paper techniques reduce it to zero
        # under ALLBB on these samples.
        for label in ("ecf", "edgcf", "rcf"):
            result = campaigns[label]
            assert result.unreported_harm_rate <= \
                none.unreported_harm_rate
        assert campaigns["edgcf"].unreported_harm_rate == 0.0, name
        assert campaigns["rcf"].unreported_harm_rate == 0.0, name
        # Cross-validation against the analytic model (loose bounds:
        # 60 samples).
        hw = none.rate(Outcome.DETECTED_HARDWARE)
        assert abs(hw - model.probability(Category.F)) < 0.20, name
        benign = none.rate(Outcome.BENIGN)
        assert abs(benign - model.probability(Category.NO_ERROR)) \
            < 0.20, name
