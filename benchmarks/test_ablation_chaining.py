"""Ablation — DBT block chaining.

Chaining (patching exit stubs into direct jumps) is what keeps the
DBT baseline near the paper's ~12%: without it, every block transition
takes a trip through the dispatcher.  Also ablated: the Backend's
update-folding optimization, which compresses signature updates into
single lea instructions — and, notably, flips the EdgCF/ECF cost
ordering (see EXPERIMENTS.md).
"""

from repro.analysis.report import format_table, geomean
from repro.checking import make_technique
from repro.dbt import Dbt
from repro.machine import run_native
from repro.workloads import load

NAMES = ("181.mcf", "254.gap", "171.swim")


def _measure():
    rows = {}
    for name in NAMES:
        program = load(name, "test")
        cpu, _ = run_native(program)
        native = cpu.cycles

        def slowdown(**kwargs):
            dbt = Dbt(program, **kwargs)
            result = dbt.run()
            assert result.ok
            return dbt.cpu.cycles / native

        rows[name] = {
            "chained": slowdown(),
            "unchained": slowdown(enable_chaining=False),
            "edgcf": slowdown(technique=make_technique("edgcf")),
            "edgcf-opt": slowdown(technique=make_technique("edgcf"),
                                  optimize=True),
        }
    return rows


def test_chaining_and_backend_ablation(benchmark, publish):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table_rows = [[name] + [values[k] for k in
                            ("chained", "unchained", "edgcf",
                             "edgcf-opt")]
                  for name, values in rows.items()]
    text = ("Ablation: DBT chaining and Backend update folding "
            "(slowdown vs native)\n"
            + format_table(["benchmark", "dbt chained", "dbt unchained",
                            "edgcf", "edgcf+fold"], table_rows))
    publish("ablation_chaining", text)

    for name, values in rows.items():
        # chaining is what keeps the baseline cheap
        assert values["unchained"] > values["chained"], name
        # backend folding reduces instrumentation cost
        assert values["edgcf-opt"] < values["edgcf"], name
    # without chaining the baseline blows far past the ~12% regime
    assert geomean(v["unchained"] for v in rows.values()) > \
        geomean(v["chained"] for v in rows.values()) * 1.5
