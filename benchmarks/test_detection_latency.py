"""Extension — detection latency by checking policy.

Quantifies the fail-stop discussion of Section 6: "the less frequently
we check the signature, the more delay it can take to report the
error."  For each policy, injects the same category-D/E fault set under
RCF and reports the distribution of instructions executed between the
fault and its report, plus how many errors were never reported (the
hang exposure of RET/END).
"""

import statistics

from repro.analysis.report import format_table
from repro.checking import Policy
from repro.faults import (Category, Outcome, Pipeline, PipelineConfig,
                          generate_category_faults)
from repro.workloads import load

POLICIES = (Policy.ALLBB, Policy.RET_BE, Policy.RET, Policy.STORE,
            Policy.END)


def _measure():
    program = load("254.gap", "test")
    faults = generate_category_faults(program, per_category=12,
                                      seed=2006)
    results = {}
    for policy in POLICIES:
        pipeline = Pipeline(program,
                            PipelineConfig("dbt", "rcf", policy))
        latencies, unreported = [], 0
        for category in (Category.B, Category.C, Category.D,
                         Category.E):
            for spec in faults.by_category[category]:
                record = pipeline.run(spec)
                if record.outcome is Outcome.DETECTED_SIGNATURE:
                    latencies.append(record.detection_latency)
                elif record.outcome in (Outcome.SDC, Outcome.HANG):
                    unreported += 1
        results[policy] = (latencies, unreported)
    return results


def test_detection_latency_by_policy(benchmark, publish):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for policy, (latencies, unreported) in results.items():
        if latencies:
            rows.append([policy.value, len(latencies),
                         int(statistics.median(latencies)),
                         max(latencies), unreported])
        else:
            rows.append([policy.value, 0, "-", "-", unreported])
    text = ("Detection latency (instructions from fault to report), "
            "RCF on 254.gap\n"
            + format_table(["policy", "reported", "median", "max",
                            "unreported"], rows))
    publish("detection_latency", text)

    allbb_lat, allbb_unrep = results[Policy.ALLBB]
    assert allbb_unrep == 0
    assert statistics.median(allbb_lat) < 200
    # sparser policies never report *faster* on the median
    for policy in (Policy.RET_BE, Policy.RET, Policy.END):
        latencies, _ = results[policy]
        if latencies:
            assert statistics.median(latencies) >= \
                statistics.median(allbb_lat) * 0.5
    # STORE checks before observable output: nothing slips through
    _, store_unreported = results[Policy.STORE]
    assert store_unreported == 0
