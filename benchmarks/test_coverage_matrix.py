"""The coverage matrix — the paper's Section-3 comparison plus the
inserted-branch safety column (the claim behind Figure 14's shading
and the conclusion's "RCF can cover all the branch-errors, including
those that occur at the conditional branch instructions inserted to
update/check the signature").

Expected picture:

===========  =====  =====  =====  =====  =====  ===  =================
technique      A      B      C      D      E     F   inserted branches
===========  =====  =====  =====  =====  =====  ===  =================
none         miss   miss   miss   miss   miss   hw   —
CFCSS        miss   ok     miss   alias  alias  hw   —
ECCA         miss   ok     miss   ok     miss   hw   —
ECF          ok     ok     MISS   ok     ok     hw   unsafe (Jcc)
EdgCF        ok     ok     ok     ok     ok     hw   unsafe (Jcc)
RCF          ok     ok     ok     ok     ok     hw   covered
===========  =====  =====  =====  =====  =====  ===  =================
"""

from repro.analysis import compute_coverage_matrix
from repro.faults import Category
from repro.workloads import load


def _compute(scale):
    # 254.gap discriminates well: category-C landings re-execute parts
    # of mod-exp blocks, which is never output-neutral.  Campaigns are
    # one full run per fault, so the test-scale workload keeps each of
    # the several hundred runs short.
    program = load("254.gap", "test")
    return compute_coverage_matrix(program, per_category=12, seed=2006,
                                   cache_max_sites=18)


def test_coverage_matrix(benchmark, scale, publish):
    matrix = benchmark.pedantic(_compute, args=(scale,), rounds=1,
                                iterations=1)
    publish("coverage_matrix", matrix.table())

    sdc_capable = (Category.A, Category.B, Category.C, Category.D,
                   Category.E)

    # Unprotected run misses most SDC-capable categories.
    assert not all(matrix.covered("dbt/none/allbb", c)
                   for c in sdc_capable)
    # Everyone benefits from hardware on F.
    for label in matrix.results:
        assert matrix.covered(label, Category.F), label

    # The paper's per-technique claims.
    assert not matrix.covered("static/cfcss/allbb", Category.A)
    assert not matrix.covered("static/cfcss/allbb", Category.C)
    assert not matrix.covered("static/ecca/allbb", Category.A)
    assert not matrix.covered("static/ecca/allbb", Category.C)
    assert not matrix.covered("dbt/ecf/allbb", Category.C)
    for category in (Category.A, Category.B, Category.D, Category.E):
        assert matrix.covered("dbt/ecf/allbb", category), category
    for category in sdc_capable:
        assert matrix.covered("dbt/edgcf/allbb", category), category
        assert matrix.covered("dbt/rcf/allbb", category), category

    # Inserted-branch (cache-level) safety: only RCF is clean.
    assert matrix.cache_results["dbt/rcf/allbb"].undetected == 0
    assert matrix.cache_results["dbt/ecf/allbb"].undetected > 0
    assert matrix.cache_results["dbt/edgcf/allbb"].undetected > 0
