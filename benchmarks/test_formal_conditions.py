"""Section 4 — exhaustive verification of the sufficient and necessary
single-error detection conditions (Claim 1 plus the baselines'
counterexamples), over the model CFGs."""

from collections import Counter

from repro.analysis.report import format_table
from repro.formal import (FORMAL_TECHNIQUES, check_conditions,
                          classify_witness, diamond_cfg, fanin_cfg,
                          loop_cfg)

CFGS = (("diamond", diamond_cfg()), ("loop", loop_cfg()),
        ("fanin", fanin_cfg()))


def _verify_all():
    reports = {}
    for cfg_name, cfg in CFGS:
        for name, cls in sorted(FORMAL_TECHNIQUES.items()):
            reports[(cfg_name, name)] = (cfg, check_conditions(cls(cfg)))
    return reports


def test_formal_conditions(benchmark, publish):
    reports = benchmark.pedantic(_verify_all, rounds=1, iterations=1)

    rows = []
    for (cfg_name, name), (cfg, report) in reports.items():
        misses = Counter(classify_witness(cfg, e)
                         for e in report.undetected_errors)
        rows.append([
            cfg_name, name,
            "yes" if report.necessary_holds else "NO",
            "yes" if report.sufficient_holds else "NO",
            ",".join(f"{c}:{n}" for c, n in sorted(misses.items()))
            or "-",
        ])
    text = ("Section 4 — exhaustive single-error condition check\n"
            + format_table(["cfg", "technique", "necessary",
                            "sufficient", "undetected (category:count)"],
                           rows))
    publish("formal_conditions", text)

    for (cfg_name, name), (cfg, report) in reports.items():
        # Necessary condition (no false positives) holds universally.
        assert report.necessary_holds, (cfg_name, name)
        misses = {classify_witness(cfg, e)
                  for e in report.undetected_errors}
        if name in ("edgcf", "rcf"):
            # Claim 1: both paper techniques detect every single error.
            assert report.sufficient_holds, (cfg_name, name)
        elif name == "ecf":
            assert misses == {"C"}, (cfg_name, misses)
        else:  # cfcss, ecca
            assert "A" in misses and "C" in misses, (cfg_name, name)
