"""Section 6 baseline — "The average slow down from the native code to
running on DBT is about 12%"."""

from repro.analysis import dbt_baseline


def test_dbt_baseline_overhead(benchmark, scale, publish):
    sweep = benchmark.pedantic(dbt_baseline, args=(scale,), rounds=1,
                               iterations=1)
    means = sweep.geomeans("dbt-base", versus="native")
    text = ("DBT baseline — uninstrumented-DBT slowdown vs native\n"
            + sweep.table(["dbt-base"])
            + f"\n\ngeomean overhead: fp={means['fp'] - 1:+.1%} "
              f"int={means['int'] - 1:+.1%} all={means['all'] - 1:+.1%}"
              "\n(paper: about +12%)")
    publish("dbt_baseline", text)

    # Same regime as the paper's ~12%.
    assert 1.0 < means["all"] < 1.25
    # Translation overhead comes from extra jumps and indirect-branch
    # dispatch, both denser in the branchy int suite.
    assert means["int"] >= means["fp"]
