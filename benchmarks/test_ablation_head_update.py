"""Ablation — EdgCF's head update (Figure 6) vs the naive edge-only
strawman (Figure 5).

The paper introduces EdgCF in two steps: updating PC' only at block
exits leaves "errors that jump to the middle of the correct target
basic block" undetectable, because source and landing share a
signature; adding the head update (PC' -> 0 on block entry) closes the
hole.  This bench finds the naive variant's witnesses mechanically and
measures what the head update costs.
"""

from repro.analysis.report import format_table
from repro.analysis.slowdown import _measure_dbt, _measure_native
from repro.checking import Policy, UpdateStyle
from repro.formal import FormalTechnique, check_conditions, diamond_cfg, \
    loop_cfg


class FormalNaiveEdgeCF(FormalTechnique):
    """Figure 5: PC' carries sig(current block) through the body; no
    entry transformation."""

    name = "edgcf-naive"

    def initial(self, entry):
        return self.cfg.address(entry)

    def entry_update(self, state, block):
        return state

    def exit_update(self, state, block, logic_target):
        return (state - self.cfg.address(block)
                + self.cfg.address(logic_target))

    def check(self, state, block):
        return state == self.cfg.address(block)


def _analyze():
    formal = {}
    for cfg_name, cfg in (("diamond", diamond_cfg()),
                          ("loop", loop_cfg())):
        from repro.formal import FormalEdgCF
        formal[(cfg_name, "edgcf")] = (cfg,
                                       check_conditions(FormalEdgCF(cfg)))
        formal[(cfg_name, "naive")] = (
            cfg, check_conditions(FormalNaiveEdgeCF(cfg)))
    perf = {}
    for name in ("181.mcf", "171.swim"):
        native = _measure_native(name, "test")
        for technique in ("edgcf", "edgcf-naive"):
            cost = _measure_dbt(name, "test", technique, Policy.ALLBB,
                                UpdateStyle.JCC)
            perf[(name, technique)] = cost.cycles / native.cycles
    return formal, perf


def test_head_update_ablation(benchmark, publish):
    formal, perf = benchmark.pedantic(_analyze, rounds=1, iterations=1)

    rows = []
    for (cfg_name, name), (cfg, report) in formal.items():
        witnesses = [e for e in report.undetected_errors]
        rows.append([cfg_name, name,
                     "yes" if report.sufficient_holds else "NO",
                     len(witnesses)])
    text = ("Ablation: EdgCF head update (Figure 6) vs naive "
            "edge-only (Figure 5)\n"
            + format_table(["cfg", "variant", "sufficient",
                            "undetected"], rows))
    text += "\n\nslowdown vs native (test scale):\n"
    for (name, technique), slowdown in perf.items():
        text += f"  {name:10s} {technique:12s} {slowdown:.3f}\n"
    publish("ablation_head_update", text)

    for (cfg_name, name), (cfg, report) in formal.items():
        if name == "edgcf":
            assert report.sufficient_holds
        else:
            # the naive variant leaks, and every leaked landing is in
            # the middle of the *correct target* block — Figure 5's
            # exact hole.
            assert not report.sufficient_holds
            for error in report.undetected_errors:
                assert not error.landing.is_head
                assert error.landing.block == error.logic
    # the head update costs something, but not much
    for name in ("181.mcf", "171.swim"):
        assert perf[(name, "edgcf")] >= perf[(name, "edgcf-naive")] * 0.98
