"""Figure 12 — per-benchmark performance slowdown for the RCF, EdgCF
and ECF techniques under the DBT (Jcc updates, ALLBB policy).

Paper reference (geomean-all, vs the uninstrumented-DBT baseline):
RCF 1.46x, EdgCF 1.41x, ECF 1.39x; fp overheads visibly smaller than
int ("the performance slowdown is less dramatic in the floating point
benchmarks ... large basic blocks and/or more time-consuming
instructions").
"""

from repro.analysis import figure12


def test_figure12_technique_slowdown(benchmark, scale, publish):
    sweep = benchmark.pedantic(figure12, args=(scale,), rounds=1,
                               iterations=1)
    labels = ["dbt-base", "rcf", "edgcf", "ecf"]
    text = ("Figure 12 — slowdown vs native (dbt-base = uninstrumented "
            "DBT)\n" + sweep.table(labels))
    vs_dbt = {lb: sweep.geomeans(lb, versus="dbt-base")
              for lb in ("rcf", "edgcf", "ecf")}
    text += "\n\ngeomeans vs the DBT baseline (the paper's normalization):\n"
    for label, means in vs_dbt.items():
        text += (f"  {label:6s} fp={means['fp']:.3f} "
                 f"int={means['int']:.3f} all={means['all']:.3f}\n")
    from repro.analysis import bar_chart
    text += "\n" + bar_chart(
        [(label, means["all"]) for label, means in vs_dbt.items()],
        title="geomean-all slowdown vs DBT baseline "
              "(paper: RCF 1.46, EdgCF 1.41, ECF 1.39)")
    publish("fig12_slowdown", text)

    # Shape: RCF is the most expensive technique; every technique costs
    # more than the uninstrumented DBT.
    assert vs_dbt["rcf"]["all"] > vs_dbt["edgcf"]["all"]
    assert vs_dbt["rcf"]["all"] >= vs_dbt["ecf"]["all"]
    for means in vs_dbt.values():
        assert means["all"] > 1.05
        # fp overhead below int overhead (big blocks, costly FP ops)
        assert means["fp"] < means["int"]
    # rough magnitude: same regime as the paper's 1.39-1.46x
    assert 1.1 < vs_dbt["rcf"]["all"] < 2.2
