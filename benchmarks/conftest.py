"""Benchmark-harness configuration.

Each benchmark file regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  Results are printed
and also written to ``benchmarks/results/*.txt`` so they survive pytest
output capture.

Scale: set ``REPRO_BENCH_SCALE`` to ``test``, ``small`` (default) or
``ref``; ``ref`` takes a few minutes but uses the largest workloads.

Parallelism: set ``REPRO_BENCH_JOBS`` to the number of campaign worker
processes (default 1 = serial; 0 = one per CPU).  Campaign results are
identical for every job count — only the wall clock changes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("test", "small", "ref"):
        raise ValueError(f"bad REPRO_BENCH_SCALE: {scale}")
    return scale


def bench_jobs() -> int:
    from repro.faults import resolve_jobs
    return resolve_jobs(int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def jobs() -> int:
    return bench_jobs()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print a report and persist it under benchmarks/results/."""
    def _publish(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")
    return _publish
