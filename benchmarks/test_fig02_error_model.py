"""Figure 2 — branch-error probabilities per category, split by
taken/not-taken and address/flags, for the SPEC-Int and SPEC-Fp suites.

Paper reference values (SPEC-Int totals): A 4.60%, B 0.09%, C 0.49%,
D 0.90%, E 16.13%, F 16.23%, No-Error 61.56%.  The reproduction matches
the *shape*: most mass in No-Error and F, E the largest SDC-capable
category, B negligible; exact percentages differ with the ISA's offset
width and the synthetic block-size distribution (see EXPERIMENTS.md).
"""

from repro.analysis import compute_figure2
from repro.faults import Category


def test_figure2_error_model(benchmark, scale, publish):
    figure = benchmark.pedantic(compute_figure2, args=(scale,),
                                rounds=1, iterations=1)
    publish("fig02_error_model", figure.render())

    for model in (figure.int_model, figure.fp_model):
        # address faults on not-taken branches never cause errors
        for category in Category:
            if category is Category.NO_ERROR:
                continue
            assert model.probability(category, taken=False,
                                     kind="addr") == 0.0
        # the harmless + hardware-caught mass dominates
        assert (model.probability(Category.NO_ERROR)
                + model.probability(Category.F)) > 0.5
        # B is negligible
        assert model.probability(Category.B) < 0.02
