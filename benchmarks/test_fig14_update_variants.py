"""Figure 14 — geomean slowdown when the conditional signature update
uses Jcc (inserted conditional jump) vs CMOVcc (conditional move).

Paper reference (geomean-all): Jcc — RCF 1.46, EdgCF 1.41, ECF 1.39;
CMOVcc — RCF 1.57, EdgCF 1.54, ECF 1.44.  The Jcc forms are *unsafe*
for ECF/EdgCF (shaded cells; measured by the coverage-matrix bench);
the paper's observation that "RCF using Jcc, which is safe, almost
beats ECF when using CMOVcc" is asserted below.
"""

from repro.analysis import figure14
from repro.analysis.report import format_table


def test_figure14_update_instruction(benchmark, scale, publish):
    sweep = benchmark.pedantic(figure14, args=(scale,), rounds=1,
                               iterations=1)
    rows = []
    means = {}
    for style, suffix in (("Jcc", ""), ("CMOVcc", "-cmov")):
        row = [style]
        for technique in ("rcf", "edgcf", "ecf"):
            label = technique + suffix
            geo = sweep.geomeans(label, versus="dbt-base")["all"]
            means[(style, technique)] = geo
            row.append(geo)
        rows.append(row)
    text = ("Figure 14 — geomean slowdown vs DBT baseline by update "
            "instruction\n(paper: Jcc unsafe for EdgCF/ECF — see the "
            "coverage-matrix bench)\n"
            + format_table(["update", "RCF", "EdgCF", "ECF"], rows))
    publish("fig14_update_variants", text)

    # CMOV costs more than Jcc for every technique.
    for technique in ("rcf", "edgcf", "ecf"):
        assert means[("CMOVcc", technique)] > means[("Jcc", technique)]
    # "RCF using Jcc almost beats ECF using CMOVcc": within 10%.
    assert means[("Jcc", "rcf")] < means[("CMOVcc", "ecf")] * 1.10
