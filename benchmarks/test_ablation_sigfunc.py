"""Ablation — the GEN_SIG function: xor (x ^ y ^ z) vs the additive
(x − y + z) variant the paper actually ships.

Section 4.4: "Another similar choice is GEN_SIG(x, y, z) = x − y + z,
which also satisfies both the sufficient and necessary condition.  In
real implementation, we actually use this function to avoid the EFLAGS
problem in IA32."  Both algebras are verified equivalent in detection
power; the instruction-set reason to prefer the additive form (xor
clobbers FLAGS, lea does not) is asserted against the ISA tables.
"""

from repro.analysis.report import format_table
from repro.formal import (FormalEdgCF, check_conditions, diamond_cfg,
                          fanin_cfg, loop_cfg)
from repro.isa.opcodes import OP_TABLE, Op


class FormalEdgCFXor(FormalEdgCF):
    """EdgCF with the xor GEN_SIG of the paper's formula (4)."""

    name = "edgcf-xor"

    def entry_update(self, state, block):
        return state ^ self.cfg.address(block)

    def exit_update(self, state, block, logic_target):
        return state ^ self.cfg.address(logic_target)


def _verify():
    results = {}
    for cfg_name, cfg in (("diamond", diamond_cfg()),
                          ("loop", loop_cfg()), ("fanin", fanin_cfg())):
        for cls in (FormalEdgCF, FormalEdgCFXor):
            results[(cfg_name, cls.name)] = check_conditions(cls(cfg))
    return results


def test_sigfunc_ablation(benchmark, publish):
    results = benchmark.pedantic(_verify, rounds=1, iterations=1)

    rows = [[cfg_name, name,
             "yes" if rep.necessary_holds else "NO",
             "yes" if rep.sufficient_holds else "NO"]
            for (cfg_name, name), rep in results.items()]
    text = ("Ablation: GEN_SIG algebra — additive vs xor\n"
            + format_table(["cfg", "variant", "necessary", "sufficient"],
                           rows)
            + "\n\nISA reality check: xor sets FLAGS (unsafe to insert "
              "into translated code);\nlea/lea3/lsub do not — hence the "
              "paper's x-y+z implementation choice.")
    publish("ablation_sigfunc", text)

    # Both algebras detect all single errors...
    for report in results.values():
        assert report.detects_all_single_errors
    # ...but only the additive one is implementable flaglessly on this
    # (and the paper's) ISA.
    assert OP_TABLE[Op.XOR].sets_flags
    assert not OP_TABLE[Op.LEA].sets_flags
    assert not OP_TABLE[Op.LEA3].sets_flags
    assert not OP_TABLE[Op.LSUB].sets_flags
