"""Code footprint per technique.

Section 3.2's justification for block-granular (not per-instruction)
regions is that finer granularity would make "the performance cost and
code footprint size ... prohibitive".  This bench quantifies the
footprint each technique actually pays, statically (rewritten text /
original text) and dynamically (code-cache bytes / translated guest
bytes).
"""

from repro.analysis.footprint import footprint_table
from repro.analysis.report import format_table
from repro.workloads import load

PROGRAMS = ("197.parser", "171.swim")


def _measure():
    return {name: footprint_table(load(name, "test"))
            for name in PROGRAMS}


def test_code_footprint(benchmark, publish):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for name, table in data.items():
        for row in table:
            rows.append([name, row.technique,
                         (f"{row.static_growth:.2f}"
                          if row.static_growth else "-"),
                         f"{row.cache_growth:.2f}"])
    text = ("Code footprint — text growth per technique\n"
            + format_table(["benchmark", "technique", "static x",
                            "dbt-cache x"], rows))
    publish("code_footprint", text)

    for name, table in data.items():
        by_name = {row.technique: row for row in table}
        # instrumentation costs real space
        assert by_name["edgcf"].cache_growth > \
            by_name["none"].cache_growth
        # RCF's extra region transition costs at least EdgCF's footprint
        assert by_name["rcf"].cache_growth >= \
            by_name["edgcf"].cache_growth
        # sanity: growth in the regime the paper tolerates (single-digit
        # multipliers, nowhere near per-instruction-region blowup)
        for row in table:
            assert row.cache_growth < 8.0
            if row.static_growth:
                assert row.static_growth < 8.0
