#!/usr/bin/env python
"""Tour of the multithreaded guest machine (`repro.threads`).

Walks the scheduler and the cross-context signature story end to end:

1. a 4-thread benchmark runs under the deterministic preemptive
   scheduler on **both** execution backends — same output, same
   retired-instruction count, byte-identical schedule trace;
2. a different scheduler seed under the `priority` policy explores a
   different (but equally reproducible) interleaving — the committed
   result is schedule-robust, the schedule digest is not;
3. instrumentation is transparent on threaded programs: an ECF run
   with signature swapping commits the same result as the golden run;
4. the cross-context escape: a bit flip in a *saved* thread's
   signature register is detected with signature swapping on, and
   silently discarded with `--no-sig-swap` — `repro explain`
   attributes the escape to the missing swap protocol.

Run:  python examples/threads_tour.py
(See docs/threads.md for the machine model and the syscall ABI.)
"""

from repro import assemble
from repro.exec import BACKEND_NAMES, install_backend
from repro.faults import PipelineConfig
from repro.faults.campaign import Pipeline
from repro.faults.injector import SchedFaultSpec
from repro.forensics import explain_spec
from repro.machine import Cpu
from repro.threads import ThreadedMachine
from repro.workloads import BY_NAME

PROGRAM = assemble(
    BY_NAME["mt.counters4"].generator(threads=4, iters=40, spin=4),
    name="mt.counters4")
QUANTUM = 97


def run_threaded(backend, policy="rr", seed=0):
    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(PROGRAM, executable_text=True)
    machine = ThreadedMachine(cpu, quantum=QUANTUM, policy=policy,
                              seed=seed)
    stop = machine.run(max_steps=5_000_000)
    assert stop.exit_code == 0, stop
    return cpu, machine


def main() -> None:
    # 1. Cross-backend determinism: the schedule trace is a pure
    #    function of (program, quantum, policy, seed), not of the
    #    execution tier.
    print("== cross-backend schedule parity ==")
    digests = {}
    for backend in BACKEND_NAMES:
        cpu, machine = run_threaded(backend)
        digests[backend] = machine.trace_digest()
        print(f"  {backend:6s}: {cpu.icount} instrs, "
              f"{machine.switches} switches, {machine.thread_count()} "
              f"threads, schedule {machine.trace_digest()}, "
              f"output {list(cpu.output_values)}")
    assert digests["interp"] == digests["block"]
    baseline_output = list(cpu.output_values)

    # 2. A different seed under `priority` explores a different
    #    interleaving; the committed result is schedule-robust.
    print("== seeded interleavings ==")
    for seed in (0, 7):
        cpu, machine = run_threaded("interp", policy="priority",
                                    seed=seed)
        print(f"  priority/seed={seed}: schedule "
              f"{machine.trace_digest()}, output "
              f"{list(cpu.output_values)}")
        assert list(cpu.output_values) == baseline_output

    # 3. Transparency: ECF instrumentation with signature swapping
    #    commits the same result on a clean threaded run.
    print("== instrumented threaded run (ecf, sig swap on) ==")
    config = PipelineConfig("static", "ecf", threads=True,
                            quantum=QUANTUM)
    record = Pipeline(PROGRAM, config).run(None)
    print(f"  outcome={record.outcome.value}, "
          f"outputs={list(record.outputs[1])}")
    assert list(record.outputs[1]) == baseline_output

    # 4. The cross-context escape.  At context switch #9 flip bit 10
    #    of thread 1's *saved* PCP (r16) — corrupting signature state
    #    that is switched out, pending its next check.
    print("== cross-context escape (sched-ctx:9,1,16,10) ==")
    spec = SchedFaultSpec(switch=9, kind="ctx-bit", tid=1, reg=16,
                          bit=10)
    for sig_swap in (True, False):
        config = PipelineConfig("static", "ecf", threads=True,
                                quantum=QUANTUM, sig_swap=sig_swap)
        record = Pipeline(PROGRAM, config).run(spec)
        mode = "swap" if sig_swap else "no-swap"
        print(f"  {mode:8s}: {record.outcome.value}")
        if not sig_swap:
            _divergence, attribution, _text = explain_spec(
                PROGRAM, config, spec)
            print(f"  attribution: {attribution.reason.value}")
            print(f"    {attribution.detail}")
            assert attribution.reason.value == "cross-context-escape"


if __name__ == "__main__":
    main()
