#!/usr/bin/env python
"""Data-flow checking (the paper's future work, implemented).

Control-flow signatures cannot see a corrupted *value*: a bit flip in
a register that never changes a branch sails straight through EdgCF or
RCF and corrupts the output.  The duplication extension (SWIFT-style)
computes everything twice and compares at stores, branches and
syscalls.  This example strikes one register mid-run and shows the
three regimes: silent corruption, invisible-to-CF-checking, and caught
by duplication.

Run:  python examples/dataflow_protection.py
"""

from repro import assemble, run_native
from repro.checking import EdgCF
from repro.dbt import Dbt
from repro.faults import RegisterFaultSpec

SOURCE = """
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    mul r3, r2, r2
    add r1, r1, r3
    addi r2, r2, 1
    cmpi r2, 30
    jl loop
    syscall 1
    movi r1, 0
    syscall 0
"""


def main() -> None:
    program = assemble(SOURCE, name="df-demo")
    cpu, _ = run_native(program)
    print(f"golden output: {cpu.output}")

    # A strike on the accumulator, mid-loop.
    fault = RegisterFaultSpec(icount=150, reg=1, bit=12)

    configs = [
        ("unprotected", dict()),
        ("edgcf (control flow only)", dict(technique=EdgCF())),
        ("duplication", dict(dataflow=True)),
        ("edgcf + duplication", dict(technique=EdgCF(),
                                     dataflow=True)),
    ]
    for label, kwargs in configs:
        dbt = Dbt(program, **kwargs)
        fault.install(dbt.cpu)
        result = dbt.run()
        detected = result.detected_error or result.detected_dataflow
        verdict = ("DETECTED" if detected
                   else ("output ok" if dbt.cpu.output == cpu.output
                         else f"SILENT CORRUPTION: {dbt.cpu.output}"))
        print(f"  {label:28s} -> {verdict}")

    print("\ncontrol-flow checking alone is blind to pure data faults;")
    print("duplication catches them at the next store/branch/output "
          "check.")


if __name__ == "__main__":
    main()
