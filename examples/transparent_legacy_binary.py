#!/usr/bin/env python
"""Transparency: protect an existing binary — jump tables, self-
modifying code and all — without touching it.

The paper's pitch for the DBT deployment is that "legacy code [can]
make transparent use of software-based reliability techniques": no
recompilation, no source, no CFG known up front.  This example builds a
"legacy" program image that does two things static rewriters cannot
handle — dispatches through a jump table (guest-computed code
addresses) and patches its own instructions at run time — and runs it
under every checking technique the DBT supports.

Run:  python examples/transparent_legacy_binary.py
"""

from repro import assemble
from repro.checking import make_technique
from repro.dbt import Dbt
from repro.instrument import RewriteError, instrument_program

LEGACY = """
.entry main
.data
.align 4
handlers:  .word op_inc, op_dbl, op_neg
.text
main:
    movi r1, 5              ; accumulator
    movi r5, 0              ; opcode stream position
dispatch:
    ; opcode = position % 3, via the jump table
    movi r3, 3
    mov r2, r5
    mod r2, r2, r3
    shli r2, r2, 2
    const r3, handlers
    lea3 r3, r3, r2
    ld r4, r3, 0
    jmpr r4                 ; guest-computed code address
op_inc:
    addi r1, r1, 1
    jmp next
op_dbl:
    add r1, r1, r1
    jmp next
op_neg:
    neg r1, r1
next:
    addi r5, r5, 1
    cmpi r5, 9
    jl dispatch

    ; self-modifying finale: patch the upcoming instruction from
    ; "addi r1, r1, 1" to "addi r1, r1, 100" before it ever runs
    const r3, site
    const r4, 0x10084064    ; addi r1, r1, 100
    st r4, r3, 0
site:
    addi r1, r1, 1
    syscall 1
    movi r1, 0
    syscall 0
"""


def main() -> None:
    program = assemble(LEGACY, name="legacy")

    # Static rewriting is impossible for this binary:
    try:
        instrument_program(program, "edgcf")
    except RewriteError as exc:
        print(f"static rewriter: REFUSED ({exc})\n")

    # The DBT handles it transparently under every technique.
    reference = None
    for technique in (None, "ecf", "edgcf", "rcf"):
        tech = make_technique(technique) if technique else None
        dbt = Dbt(program, technique=tech)
        result = dbt.run()
        assert result.ok, result.stop
        label = technique or "baseline"
        print(f"dbt/{label:8s} output={dbt.cpu.output}  "
              f"cycles={dbt.cpu.cycles}  "
              f"smc-flushes={result.smc_flushes}  "
              f"blocks={result.translated_blocks}")
        if reference is None:
            reference = dbt.cpu.output
        assert dbt.cpu.output == reference
    print("\nsame output under every technique; the jump table and the"
          "\nruntime code patch were handled by translation-on-demand "
          "+\nwrite-protection, exactly as the paper's Section 5 "
          "describes.")


if __name__ == "__main__":
    main()
