#!/usr/bin/env python
"""Branch-error probability analysis (the paper's Figures 2 and 3).

Profiles the synthetic SPEC-Int and SPEC-Fp suites and evaluates the
single-bit error model analytically: for every dynamic branch
execution, every address-offset bit and flag bit is flipped on paper
and the resulting control transfer classified into the branch-error
categories.

Run:  python examples/error_model_analysis.py [scale]
"""

import sys

from repro.analysis import compute_figure2
from repro.faults import Category


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "test"
    print(f"profiling both suites at scale {scale!r}...\n")
    figure = compute_figure2(scale)

    print(figure.render())
    print()
    print(figure.render_figure3())
    print()

    int_dist = figure.int_model.sdc_distribution()
    fp_dist = figure.fp_model.sdc_distribution()
    print("observations (matching the paper's):")
    print(f"  - category E dominates the SDC-capable mass "
          f"(int {int_dist[Category.E]:.0%}, fp "
          f"{fp_dist[Category.E]:.0%})")
    print(f"  - the fp suite's large basic blocks push C above D "
          f"(C={fp_dist[Category.C]:.0%} vs D={fp_dist[Category.D]:.0%})"
          f"; the int suite is the other way around "
          f"(C={int_dist[Category.C]:.0%} vs "
          f"D={int_dist[Category.D]:.0%})")
    no_err = figure.int_model.probability(Category.NO_ERROR)
    cat_f = figure.int_model.probability(Category.F)
    print(f"  - most faults are harmless or hardware-caught "
          f"(int: no-error {no_err:.0%} + F {cat_f:.0%})")


if __name__ == "__main__":
    main()
