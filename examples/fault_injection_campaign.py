#!/usr/bin/env python
"""Fault-injection campaign: reproduce the paper's coverage comparison.

Injects targeted single faults from every branch-error category (A-F)
into one SPEC2000-shaped workload, under each checking configuration —
no protection, the static baselines (CFCSS, ECCA), and the paper's DBT
techniques (ECF, EdgCF, RCF) — then prints the coverage matrix,
including the inserted-branch (cache-level) column where only RCF is
clean.

Run:  python examples/fault_injection_campaign.py [benchmark] [n]
"""

import sys

from repro.analysis import compute_coverage_matrix
from repro.workloads import load


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "254.gap"
    per_category = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    program = load(name, "test")
    print(f"workload: {name} (test scale), {per_category} faults per "
          "category, one full run per fault\n")

    matrix = compute_coverage_matrix(program, per_category=per_category,
                                     seed=2006, cache_max_sites=16)
    print(matrix.table())
    print()
    print("reading guide:")
    print("  A=mistaken branch, B/C=own block begin/middle, "
          "D/E=other block begin/middle, F=non-code")
    print("  'covered' = every harmful fault was reported (signature "
          "check or hardware);")
    print("  'MISS(n)' = n faults silently corrupted output or hung "
          "unreported.")
    print()
    print("expected picture (the paper's Section 3 comparison):")
    print("  CFCSS misses A and C (and aliased D/E); ECCA misses A "
          "and C;")
    print("  ECF misses exactly C; EdgCF and RCF cover A-E;")
    print("  only RCF also covers faults on its own inserted branches.")


if __name__ == "__main__":
    main()
