#!/usr/bin/env python
"""Tour of the observability subsystem (`repro.obs`).

Runs a small fault-injection campaign with metrics and span tracing
enabled — serially and fanned out over worker processes — then renders
the merged campaign registry the way `repro stats` does and shows that
the parallel run's telemetry sums to exactly the serial totals.

Run:  python examples/observability_tour.py
"""

import json
import os
import tempfile

from repro import obs
from repro.faults import (CampaignExecutor, PipelineConfig,
                          clear_caches, generate_category_faults)
from repro.obs.exporters import load_snapshot, render_stats
from repro.workloads import suite as workload_suite


def counter_total(snapshot: dict, name: str) -> float:
    return sum(entry["value"] for entry in snapshot["counters"]
               if entry["name"] == name)


def run_campaign(program, config, specs, jobs: int,
                 metrics_path: str, trace_path: str | None) -> dict:
    """One observed campaign; returns the exported snapshot."""
    clear_caches()   # cold caches so both runs do identical work
    with obs.session(metrics_path, trace_path):
        CampaignExecutor(program, config, jobs=jobs).run_specs(specs)
    return load_snapshot(metrics_path)


def main() -> None:
    program = workload_suite.load("254.gap", "test")
    faults = generate_category_faults(program, per_category=4, seed=7)
    specs = [spec for specs in faults.by_category.values()
             for spec in specs]
    config = PipelineConfig("dbt", "rcf")
    print(f"campaign: {len(specs)} faults under {config.label()}\n")

    with tempfile.TemporaryDirectory() as tmp:
        serial_path = os.path.join(tmp, "serial.json")
        parallel_path = os.path.join(tmp, "parallel.json")
        trace_path = os.path.join(tmp, "trace.jsonl")

        # 1. Serial campaign, metrics + span trace captured.
        serial = run_campaign(program, config, specs, jobs=1,
                              metrics_path=serial_path,
                              trace_path=trace_path)

        # 2. The same campaign over 4 workers: each worker drains its
        #    own registry after every chunk, the parent merges the
        #    drains into one campaign-level registry.
        parallel = run_campaign(program, config, specs, jobs=4,
                                metrics_path=parallel_path,
                                trace_path=None)

        # 3. The merged parallel registry reports *exactly* the serial
        #    totals — same runs, same instructions, any job count.
        for name in ("interp_instructions_total",
                     "dbt_checks_executed_total",
                     "campaign_runs_total"):
            s = counter_total(serial, name)
            p = counter_total(parallel, name)
            marker = "==" if s == p else "!="
            print(f"{name:30s} serial={s:>10.0f} {marker} "
                  f"parallel={p:>10.0f}")
            assert s == p, name
        print()

        # 4. The human report (what `repro stats parallel.json` prints).
        print(render_stats(parallel))
        print()

        # 5. The span event log streamed by --trace: one JSON object
        #    per finished span, parents after their children.
        with open(trace_path) as handle:
            events = [json.loads(line) for line in handle]
        by_name: dict[str, int] = {}
        for event in events:
            by_name[event["name"]] = by_name.get(event["name"], 0) + 1
        print(f"trace: {len(events)} span events: "
              + ", ".join(f"{name} x{count}"
                          for name, count in sorted(by_name.items())))


if __name__ == "__main__":
    main()
