#!/usr/bin/env python
"""Tour of the fault-forensics layer (`repro.forensics`).

Replays single category-E branch errors (wrong edge into a block body)
against the golden trace under RCF and walks the `repro explain`
surface:

1. under the dense **ALLBB** policy the fault is detected 9
   instructions after injection — the explain timeline reports the
   fail-stop latency in both instructions and cycles, matching the
   campaign's `RunRecord` exactly;
2. the same fault under the sparse **RET** policy is still detected,
   but an order of magnitude later — the Section-6 latency-vs-overhead
   trade measured on one concrete run;
3. a category-E redirect that skips the output syscall and halts
   *before reaching any check* escapes RET as an SDC, and the
   escape-attribution record names the mechanism (the Assumption-2
   gap) with its grounding in the Section-4 formalization;
4. a small campaign with escape sampling shows the JSONL forensics
   bundle a real `--forensics` campaign writes.

Run:  python examples/forensics_tour.py
"""

import json

from repro import assemble
from repro.checking import Policy
from repro.faults import FaultSpec, Outcome, PipelineConfig, RedirectFault
from repro.faults.executor import CampaignExecutor
from repro.forensics import explain_spec, write_campaign_forensics

PROGRAM = assemble("""
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    add r1, r1, r2
    addi r2, r2, 1
    cmpi r2, 11
    jl loop
    syscall 1
    movi r1, 0
    syscall 0
""")

BRANCH = PROGRAM.symbols["loop"] + 12          # the jl


def main() -> None:
    # A category-E error: the loop branch lands in the body of the
    # entry block instead of one of its two legal successors.
    caught = FaultSpec(branch_pc=BRANCH, occurrence=1,
                       fault=RedirectFault(PROGRAM.symbols["main"] + 4))

    # 1. RCF/ALLBB: every block entry checks, so the wrong region
    #    signature is caught at the next check — 9 instructions later.
    config = PipelineConfig("dbt", "rcf", Policy.ALLBB)
    divergence, attribution, text = explain_spec(PROGRAM, config, caught)
    print("=== one category-E fault, detection latency by policy ===\n")
    print(f"--- {config.label()} ---")
    print(text)
    assert divergence.outcome is Outcome.DETECTED_SIGNATURE
    assert attribution.reason.value == "not-an-escape"
    dense_latency = divergence.detection_latency

    # 2. The same fault under RCF/RET: the sparse policy still catches
    #    it, but the report comes an order of magnitude later — the
    #    run re-enters the loop and circles until a checked site.
    config = PipelineConfig("dbt", "rcf", Policy.RET)
    divergence, _, text = explain_spec(PROGRAM, config, caught)
    print(f"\n--- {config.label()} ---")
    print(text)
    assert divergence.outcome is Outcome.DETECTED_SIGNATURE
    assert divergence.detection_latency > dense_latency
    print(f"\nlatency {dense_latency} -> {divergence.detection_latency} "
          f"instructions going allbb -> ret: sparser checks report "
          f"later")

    # 3. A category-E redirect into the exit block's body skips the
    #    output syscall and halts three instructions later — before
    #    crossing a single CHECK_SIG.  Under RET it escapes as an SDC
    #    and the attribution record explains exactly why.
    escaped = FaultSpec(branch_pc=BRANCH, occurrence=1,
                        fault=RedirectFault(PROGRAM.symbols["loop"] + 20))
    divergence, attribution, text = explain_spec(PROGRAM, config, escaped)
    print(f"\n=== an escape under {config.label()} ===\n")
    print(text)
    assert divergence.outcome is Outcome.SDC
    assert divergence.checks_crossed == 0
    assert attribution.reason.value == "no-check-reached"

    # 4. What a campaign's `--forensics` flag does: run the specs, let
    #    the executor collect escapes (their global indices are stable
    #    across any --jobs count), replay a sample, and write one
    #    self-contained JSON entry per sampled escape.
    print("\n=== the campaign bundle ===\n")
    specs = [FaultSpec(BRANCH, occ, RedirectFault(
                 PROGRAM.symbols["loop"] + 20)) for occ in (1, 3, 5)]
    executor = CampaignExecutor(PROGRAM, config, jobs=2, chunk_size=1)
    executor.run_specs(specs)
    entries = write_campaign_forensics(PROGRAM, config,
                                       executor.escape_specs(),
                                       max_samples=2)
    print(f"{len(executor.escape_specs())} escape(s), "
          f"{len(entries)} replayed into the bundle; first entry:")
    print(json.dumps(entries[0], indent=2, sort_keys=True)[:800])
    for entry in entries:
        assert entry["attribution"]["reason"] == "no-check-reached"


if __name__ == "__main__":
    main()
