#!/usr/bin/env python
"""Mechanized Section 4: exhaustively verify the correctness conditions.

The paper proves (Claim 1) that EdgCF's GEN_SIG/CHECK_SIG satisfy both
the sufficient condition (every single control-flow error is detected)
and the necessary condition (no false positives), and argues in prose
that CFCSS, ECCA and ECF do not.  This example checks all of that
mechanically: it enumerates every legal execution prefix, every wrong
branch landing (block heads and block middles), and every legal
continuation, over several CFG shapes — and prints the concrete
counterexample witnesses for the baselines.

Run:  python examples/formal_verification.py
"""

from collections import Counter

from repro.formal import (FORMAL_TECHNIQUES, check_conditions,
                          classify_witness, diamond_cfg, fanin_cfg,
                          loop_cfg)


def main() -> None:
    for cfg_name, cfg in (("diamond (Figure 1)", diamond_cfg()),
                          ("loop", loop_cfg()),
                          ("fan-in (CFCSS aliasing)", fanin_cfg())):
        print(f"=== {cfg_name}: blocks {cfg.blocks} ===")
        for name in ("edgcf", "rcf", "ecf", "cfcss", "ecca"):
            report = check_conditions(FORMAL_TECHNIQUES[name](cfg))
            misses = Counter(classify_witness(cfg, e)
                             for e in report.undetected_errors)
            verdict = ("detects ALL single errors"
                       if report.detects_all_single_errors else
                       "misses " + ", ".join(
                           f"category {c} (x{n})"
                           for c, n in sorted(misses.items())))
            assert report.necessary_holds, "false positive?!"
            print(f"  {name:6s} {verdict}")
        # show one concrete witness for ECF's category-C hole
        report = check_conditions(FORMAL_TECHNIQUES["ecf"](cfg))
        if report.undetected_errors:
            witness = report.undetected_errors[0]
            print(f"  e.g. ECF witness: after {'->'.join(witness.prefix)}"
                  f", branch meant for {witness.logic} lands at "
                  f"{witness.landing} — signatures stay consistent, "
                  "error invisible")
        print()

    print("Claim 1 confirmed: EdgCF (and RCF) satisfy the sufficient "
          "and necessary\nconditions on every shape; each baseline "
          "has machine-found counterexamples.")


if __name__ == "__main__":
    main()
