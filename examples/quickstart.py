#!/usr/bin/env python
"""Quickstart: protect a program against control-flow errors.

Assembles a small R32 program, runs it natively, runs it transparently
under the dynamic binary translator with the EdgCF checking technique,
then injects a single-bit soft error into a branch and watches the
signature check catch it.

Run:  python examples/quickstart.py
"""

from repro import assemble, run_dbt, run_native
from repro.checking import EdgCF
from repro.dbt import Dbt
from repro.faults import DbtInjector, FaultSpec, OffsetBitFault

SOURCE = """
.entry main
main:
    movi r1, 0              ; checksum
    movi r2, 1              ; i
loop:
    mul r3, r2, r2
    add r1, r1, r3          ; checksum += i*i
    addi r2, r2, 1
    cmpi r2, 20
    jl loop
    syscall 1               ; print the checksum
    movi r1, 0
    syscall 0               ; exit(0)
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")

    # 1. Native execution (the unprotected baseline).
    cpu, stop = run_native(program)
    print(f"native:    output={cpu.output}  cycles={cpu.cycles}")

    # 2. Transparent protection: same binary, run under the DBT with
    #    edge control-flow checking woven into every translated block.
    dbt, result = run_dbt(program, technique=EdgCF())
    print(f"edgcf-dbt: output={dbt.cpu.output}  "
          f"cycles={dbt.cpu.cycles}  "
          f"slowdown={dbt.cpu.cycles / cpu.cycles:.2f}x  "
          f"error-detected={result.detected_error}")
    assert dbt.cpu.output == cpu.output

    # 3. Soft error: flip bit 0 of the loop branch's address offset at
    #    its 7th execution — the taken branch lands one instruction
    #    past the loop head, in the *middle* of the loop block
    #    (branch-error category C: invisible to CFCSS/ECCA/ECF).
    branch_pc = program.symbols["loop"] + 16   # the jl instruction
    fault = FaultSpec(branch_pc=branch_pc, occurrence=7,
                      fault=OffsetBitFault(bit=0))

    protected = Dbt(program, technique=EdgCF())
    DbtInjector(fault, protected).install()
    result = protected.run()
    print(f"injected:  detected={result.detected_error}  "
          f"stop={result.stop.reason.value}")
    assert result.detected_error, "EdgCF must catch this branch error"

    # 4. The same fault without protection silently corrupts the run.
    unprotected = Dbt(program)
    DbtInjector(fault, unprotected).install()
    result = unprotected.run()
    print(f"unguarded: detected={result.detected_error}  "
          f"output={unprotected.cpu.output}  (expected {cpu.output})")


if __name__ == "__main__":
    main()
