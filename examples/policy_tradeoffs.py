#!/usr/bin/env python
"""Checking-policy trade-offs (the paper's Figure 15 and fail-stop
discussion).

The signature must be *updated* in every block but only *checked* where
the policy says; fewer checks mean less overhead but longer (possibly
unbounded) error-report latency.  This example measures both sides:
overhead per policy, and what happens to detection when a fault sends
the program into an infinite loop that only ALLBB/RET-BE can report
from inside.

Run:  python examples/policy_tradeoffs.py
"""

from repro import assemble, run_native
from repro.checking import Policy, make_technique
from repro.dbt import Dbt
from repro.faults import (FaultSpec, Pipeline, PipelineConfig,
                          RedirectFault)
from repro.workloads import load

POLICIES = (Policy.ALLBB, Policy.RET_BE, Policy.RET, Policy.END)

# A program where one misdirected branch hangs it: the loop exits on
# exact equality (r2 == 8), so a fault that detours through `bump`
# (r2 += 3) makes the counter step over 8 and never terminate.
HANG_PRONE = """
.entry main
main:
    movi r2, 0
    jmp loop
bump:
    addi r2, r2, 3
    jmp loop
loop:
    addi r2, r2, 1
    cmpi r2, 8
    jz done
    jmp loop
done:
    mov r1, r2
    syscall 4
    movi r1, 0
    syscall 0
"""


def overhead_table() -> None:
    program = load("181.mcf", "small")
    cpu, _ = run_native(program)
    print(f"overhead on 181.mcf (small), RCF, vs native "
          f"({cpu.cycles} cycles):")
    for policy in POLICIES:
        dbt = Dbt(program, technique=make_technique("rcf"),
                  policy=policy)
        result = dbt.run()
        assert result.ok
        print(f"  {policy.value:7s} slowdown "
              f"{dbt.cpu.cycles / cpu.cycles:.3f}x")
    print()


def hang_reporting() -> None:
    program = assemble(HANG_PRONE, name="hang_prone")
    # At its 5th execution (counter = 5) the loop back edge is
    # misdirected into `bump`, adding 3: the counter jumps from 5 over
    # the == 8 exit test and the program loops forever.
    back_edge = program.symbols["loop"] + 12       # the jmp loop
    fault = FaultSpec(back_edge, 5,
                      RedirectFault(program.symbols["bump"]))

    print("fault that derails the loop counter (hang-inducing), RCF:")
    for policy in POLICIES:
        pipeline = Pipeline(program,
                            PipelineConfig("dbt", "rcf", policy))
        record = pipeline.run(fault)
        print(f"  {policy.value:7s} outcome={record.outcome.value:20s} "
              f"icount={record.icount}")
    print()
    print("ALLBB (and RET-BE, via the loop's backward branch) check")
    print("inside the loop and report the wrong edge; RET and END have")
    print("no check on the looping path — the paper: 'the error may")
    print("not be reported'.")


def main() -> None:
    overhead_table()
    hang_reporting()


if __name__ == "__main__":
    main()
